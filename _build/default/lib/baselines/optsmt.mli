(** OptSMT-style synthesis baseline (paper §8.3): exact sketch-free search
    with a clause-count estimator and a time budget. *)

type outcome =
  | Solved of { program : Guardrail.Dsl.prog; explored : int; clauses : int }
  | Budget_exceeded of { explored : int; clauses : int; elapsed_s : float }

(** Clause count of the flat SMT encoding of the synthesis problem. *)
val clause_estimate : ?max_lhs:int -> Dataframe.Frame.t -> int

(** Exact search; returns [Budget_exceeded] past [budget_s] seconds. *)
val solve :
  ?max_lhs:int -> ?budget_s:float -> ?epsilon:float -> Dataframe.Frame.t -> outcome
