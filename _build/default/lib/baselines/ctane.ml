(* CTANE (Fan et al., 2010): discovery of conditional functional
   dependencies (CFDs).

   A constant CFD is a pair (X -> A, tp) where the pattern tableau tp
   binds some lhs attributes to constants; the dependency only has to
   hold on the rows matching the pattern. We implement the constant-CFD
   fragment levelwise:

     for each lhs set X (|X| <= max_lhs) and each rhs A not in X,
     for each observed constant binding of X with support >= min_support,
     emit the CFD when the binding's rows agree on A up to epsilon.

   This fragment is exactly what the error-detection experiment needs:
   each emitted CFD is a row-level detector. CTANE's tendency to overfit
   (emitting one rule per frequent pattern) is intrinsic and is what
   Table 3 shows. *)

module Frame = Dataframe.Frame
module Value = Dataframe.Value

exception Out_of_budget of string

type config = {
  epsilon : float;
  max_lhs : int;
  min_support : int;
  max_rules : int;
}

let default_config = { epsilon = 0.0; max_lhs = 2; min_support = 3; max_rules = 50_000 }

type rule = {
  lhs : int list;                  (* determinant attributes, sorted *)
  pattern : Value.t list;          (* constant per lhs attribute *)
  rhs : int;
  value : Value.t;                 (* implied rhs constant *)
}

let pp_rule schema ppf r =
  Fmt.pf ppf "[%a] -> %s = %a"
    Fmt.(list ~sep:(any ", ") (fun ppf (a, v) ->
        Fmt.pf ppf "%s = %a" (Dataframe.Schema.name schema a) Value.pp v))
    (List.combine r.lhs r.pattern)
    (Dataframe.Schema.name schema r.rhs)
    Value.pp r.value

(* All subsets of size k of a list (small k). *)
let rec subsets k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
    List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

let discover ?(config = default_config) frame =
  let attrs = Frame.categorical_indices frame in
  let n = Frame.nrows frame in
  let rules = ref [] in
  let n_rules = ref 0 in
  let emit r =
    rules := r :: !rules;
    incr n_rules;
    if !n_rules > config.max_rules then
      raise (Out_of_budget (Printf.sprintf "CTANE: more than %d rules" config.max_rules))
  in
  for size = 1 to config.max_lhs do
    List.iter
      (fun lhs ->
        let lhs_codes =
          List.map (fun c -> Dataframe.Column.codes (Frame.column frame c)) lhs
        in
        List.iter
          (fun rhs ->
            if not (List.mem rhs lhs) then begin
              let rhs_col = Frame.column frame rhs in
              let rhs_codes = Dataframe.Column.codes rhs_col in
              let rhs_card = Dataframe.Column.cardinality rhs_col in
              (* histogram of rhs per lhs binding *)
              let groups : (int list, int * int array) Hashtbl.t =
                Hashtbl.create 256
              in
              for i = 0 to n - 1 do
                let key = List.map (fun codes -> codes.(i)) lhs_codes in
                let rep, hist =
                  match Hashtbl.find_opt groups key with
                  | Some g -> g
                  | None ->
                    let g = (i, Array.make rhs_card 0) in
                    Hashtbl.add groups key g;
                    g
                in
                ignore rep;
                hist.(rhs_codes.(i)) <- hist.(rhs_codes.(i)) + 1
              done;
              Hashtbl.iter
                (fun _key (rep, hist) ->
                  let support = Array.fold_left ( + ) 0 hist in
                  if support >= config.min_support then begin
                    let best = ref 0 in
                    Array.iteri (fun c k -> if k > hist.(!best) then best := c) hist;
                    let err = support - hist.(!best) in
                    if float_of_int err <= config.epsilon *. float_of_int support
                    then
                      emit
                        {
                          lhs;
                          pattern = List.map (fun a -> Frame.get frame rep a) lhs;
                          rhs;
                          value = Dataframe.Column.value_of_code rhs_col !best;
                        }
                  end)
                groups
            end)
          attrs)
      (subsets size attrs)
  done;
  List.rev !rules

(* Row-level detection: a row violates a rule when it matches the pattern
   but carries a different rhs value. *)
let detect rules frame =
  let n = Frame.nrows frame in
  let flags = Array.make n false in
  List.iter
    (fun r ->
      for i = 0 to n - 1 do
        if not flags.(i) then begin
          let matches =
            List.for_all2
              (fun a v -> Value.equal (Frame.get frame i a) v)
              r.lhs r.pattern
          in
          if matches && not (Value.equal (Frame.get frame i r.rhs) r.value) then
            flags.(i) <- true
        end
      done)
    rules;
  flags
