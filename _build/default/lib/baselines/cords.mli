(** CORDS: correlation-based soft-FD discovery (pairwise only; keeps
    transitive redundancies by construction — the §6 critique). *)

type config = {
  strength_threshold : float;
  alpha : float;
  sample_rows : int;
  seed : int;
}

val default_config : config

(** Soft-FD strength of [a -> b]: |distinct a| / |distinct (a, b)|. *)
val strength : Dataframe.Frame.t -> int -> int -> float

val correlated : alpha:float -> Dataframe.Frame.t -> int -> int -> bool

(** Single-determinant soft FDs over the categorical attributes. *)
val discover : ?config:config -> Dataframe.Frame.t -> Fd.t list
