(* Functional dependencies and FD-based row-level error detection.

   The FD-discovery baselines (TANE, CTANE, FDX) output dependencies
   X -> A. An FD by itself cannot localize errors (paper §2.2), so — as in
   the paper's evaluation — each discovered FD is operationalized as a
   detector: learn the X-value -> modal-A-value mapping on the clean
   training split, and flag test rows whose A deviates. *)

module Frame = Dataframe.Frame
module Value = Dataframe.Value

type t = { lhs : int list; rhs : int }

let make ~lhs ~rhs =
  if lhs = [] then invalid_arg "Fd.make: empty lhs";
  if List.mem rhs lhs then invalid_arg "Fd.make: rhs inside lhs";
  { lhs = List.sort_uniq Int.compare lhs; rhs }

let compare a b = Stdlib.compare (a.lhs, a.rhs) (b.lhs, b.rhs)
let equal a b = compare a b = 0

let pp schema ppf fd =
  Fmt.pf ppf "%a -> %s"
    Fmt.(list ~sep:(any ", ") string)
    (List.map (Dataframe.Schema.name schema) fd.lhs)
    (Dataframe.Schema.name schema fd.rhs)

(* g3-style violation count of an FD on a frame: rows that must be removed
   so that every lhs group has a single rhs value. *)
let violation_count frame fd =
  let n = Frame.nrows frame in
  let lhs_codes =
    List.map (fun c -> Dataframe.Column.codes (Frame.column frame c)) fd.lhs
  in
  let rhs_col = Frame.column frame fd.rhs in
  let rhs_codes = Dataframe.Column.codes rhs_col in
  let rhs_card = Dataframe.Column.cardinality rhs_col in
  let groups : (int list, int array) Hashtbl.t = Hashtbl.create 256 in
  for i = 0 to n - 1 do
    let key = List.map (fun codes -> codes.(i)) lhs_codes in
    let hist =
      match Hashtbl.find_opt groups key with
      | Some h -> h
      | None ->
        let h = Array.make rhs_card 0 in
        Hashtbl.add groups key h;
        h
    in
    hist.(rhs_codes.(i)) <- hist.(rhs_codes.(i)) + 1
  done;
  Hashtbl.fold
    (fun _ hist acc ->
      let total = Array.fold_left ( + ) 0 hist in
      let best = Array.fold_left max 0 hist in
      acc + (total - best))
    groups 0

(* Does the FD hold approximately: violations <= epsilon * n ? *)
let holds ?(epsilon = 0.0) frame fd =
  let n = Frame.nrows frame in
  n = 0 || float_of_int (violation_count frame fd) <= epsilon *. float_of_int n

(* Detector compiled from an FD on a training split: lhs combination ->
   modal rhs value. *)
type detector = {
  fd : t;
  mapping : (Value.t list, Value.t) Hashtbl.t;
}

let compile train fd =
  let n = Frame.nrows train in
  let groups : (Value.t list, (Value.t, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 256
  in
  for i = 0 to n - 1 do
    let key = List.map (fun c -> Frame.get train i c) fd.lhs in
    let hist =
      match Hashtbl.find_opt groups key with
      | Some h -> h
      | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.add groups key h;
        h
    in
    let v = Frame.get train i fd.rhs in
    Hashtbl.replace hist v (1 + Option.value ~default:0 (Hashtbl.find_opt hist v))
  done;
  let mapping = Hashtbl.create (Hashtbl.length groups) in
  Hashtbl.iter
    (fun key hist ->
      let best = ref None in
      Hashtbl.iter
        (fun v c ->
          match !best with
          | Some (_, c') when c' >= c -> ()
          | _ -> best := Some (v, c))
        hist;
      match !best with
      | Some (v, _) -> Hashtbl.add mapping key v
      | None -> ())
    groups;
  { fd; mapping }

(* Flag test rows whose rhs deviates from the training mapping; unseen lhs
   combinations are not flagged (no evidence). *)
let detect detectors test =
  let n = Frame.nrows test in
  let flags = Array.make n false in
  List.iter
    (fun d ->
      for i = 0 to n - 1 do
        if not flags.(i) then begin
          let key = List.map (fun c -> Frame.get test i c) d.fd.lhs in
          match Hashtbl.find_opt d.mapping key with
          | Some expected ->
            if not (Value.equal (Frame.get test i d.fd.rhs) expected) then
              flags.(i) <- true
          | None -> ()
        end
      done)
    detectors;
  flags
