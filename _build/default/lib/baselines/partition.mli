(** Stripped partitions (TANE's core data structure). *)

type t

val classes : t -> int array list

(** Number of stripped (size ≥ 2) classes. *)
val class_count : t -> int

(** Rows inside stripped classes. *)
val element_count : t -> int

val of_codes : int -> int array -> t
val of_column : Dataframe.Column.t -> t

(** π_X · π_Y = π_{X∪Y}. *)
val product : t -> t -> t

(** g3 error of the FD X → A from π_X and π_{X∪A}: rows to remove for the
    FD to hold exactly. *)
val fd_error : t -> t -> int

(** Exact FD check: error = 0. *)
val refines : t -> t -> bool
