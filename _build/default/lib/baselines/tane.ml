(* TANE (Huhtala et al., 1999): levelwise discovery of minimal
   (approximate) functional dependencies with stripped partitions.

   Levelwise search over the attribute-set lattice: level l holds
   partitions for all candidate sets of size l; candidate sets are built
   by an apriori join of sets sharing an (l-1)-prefix; the FD X\{A} -> A
   is emitted when the g3 error is within epsilon, and supersets of found
   lhs's are pruned (minimality).

   Like the original, memory grows with the number of candidate sets; the
   [max_candidates] budget aborts the search on wide datasets — the
   behaviour the paper reports as "-" (out-of-memory) for TANE in
   Table 3. *)

module Frame = Dataframe.Frame

exception Out_of_budget of string

type config = {
  epsilon : float;        (* g3 tolerance as a fraction of |D| *)
  max_level : int;        (* maximum lhs size + 1 *)
  max_candidates : int;   (* lattice-width budget *)
}

(* Approximate-FD tolerance of 1% by default: exact FDs rarely survive
   noisy data, and TANE's g3 machinery exists precisely for this. *)
let default_config = { epsilon = 0.01; max_level = 4; max_candidates = 20_000 }

(* Sorted-int-list attribute sets. *)
let set_remove x s = List.filter (fun y -> y <> x) s

(* Apriori join: combine sets sharing all but the last element. *)
let next_level sets =
  let tbl : (int list, int list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun s ->
      match List.rev s with
      | last :: rev_prefix ->
        let prefix = List.rev rev_prefix in
        Hashtbl.replace tbl prefix
          (last :: Option.value ~default:[] (Hashtbl.find_opt tbl prefix))
      | [] -> ())
    sets;
  let out = ref [] in
  Hashtbl.iter
    (fun prefix lasts ->
      let lasts = List.sort Int.compare lasts in
      let rec pairs = function
        | [] -> ()
        | x :: rest ->
          List.iter (fun y -> out := (prefix @ [ x; y ]) :: !out) rest;
          pairs rest
      in
      pairs lasts)
    tbl;
  !out

let discover ?(config = default_config) frame =
  let attrs = Frame.categorical_indices frame in
  let n = Frame.nrows frame in
  let budget = float_of_int n *. config.epsilon in
  let partitions : (int list, Partition.t) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun a -> Hashtbl.add partitions [ a ] (Partition.of_column (Frame.column frame a)))
    attrs;
  let found = ref [] in
  (* is some already-found lhs for [rhs] a subset of [lhs]? *)
  let subsumed lhs rhs =
    List.exists
      (fun (fd : Fd.t) ->
        fd.Fd.rhs = rhs && List.for_all (fun x -> List.mem x lhs) fd.Fd.lhs)
      !found
  in
  let level = ref (List.map (fun a -> [ a ]) attrs) in
  let l = ref 1 in
  while !level <> [] && !l < config.max_level do
    let candidates = next_level !level in
    if List.length candidates > config.max_candidates then
      raise
        (Out_of_budget
           (Printf.sprintf "TANE: %d candidate sets at level %d"
              (List.length candidates) (!l + 1)));
    (* compute partitions of this level by product of two subsets *)
    let kept = ref [] in
    List.iter
      (fun set ->
        match set with
        | a :: b :: _ ->
          let sub1 = set_remove a set in
          let sub2 = set_remove b set in
          (match
             (Hashtbl.find_opt partitions sub1, Hashtbl.find_opt partitions sub2)
           with
           | Some p1, Some p2 ->
             let p = Partition.product p1 p2 in
             Hashtbl.add partitions set p;
             kept := set :: !kept;
             (* test X\{A} -> A for each A in the set *)
             List.iter
               (fun rhs ->
                 let lhs = set_remove rhs set in
                 if not (subsumed lhs rhs) then begin
                   match Hashtbl.find_opt partitions lhs with
                   | Some pi_lhs ->
                     let err = Partition.fd_error pi_lhs p in
                     if float_of_int err <= budget then
                       found := Fd.make ~lhs ~rhs :: !found
                   | None -> ()
                 end)
               set
           | _ -> ())
        | _ -> ())
      candidates;
    level := !kept;
    incr l
  done;
  List.rev !found
