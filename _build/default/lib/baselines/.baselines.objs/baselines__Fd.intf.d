lib/baselines/fd.mli: Dataframe Format
