lib/baselines/fdx.ml: Array Dataframe Fd Float Guardrail List Printf Stat
