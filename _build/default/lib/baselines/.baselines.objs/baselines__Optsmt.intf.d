lib/baselines/optsmt.mli: Dataframe Guardrail
