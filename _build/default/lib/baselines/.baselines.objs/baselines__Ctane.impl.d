lib/baselines/ctane.ml: Array Dataframe Fmt Hashtbl List Printf
