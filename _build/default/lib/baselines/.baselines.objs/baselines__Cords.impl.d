lib/baselines/cords.ml: Array Dataframe Fd Hashtbl List Stat
