lib/baselines/optsmt.ml: Array Dataframe Guardrail Hashtbl List Option Unix
