lib/baselines/conformance.ml: Array Dataframe Float Guardrail List
