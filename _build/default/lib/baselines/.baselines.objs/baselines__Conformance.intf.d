lib/baselines/conformance.mli: Dataframe Guardrail
