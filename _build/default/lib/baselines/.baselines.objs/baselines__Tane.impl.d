lib/baselines/tane.ml: Dataframe Fd Hashtbl Int List Option Partition Printf
