lib/baselines/tane.mli: Dataframe Fd
