lib/baselines/partition.mli: Dataframe
