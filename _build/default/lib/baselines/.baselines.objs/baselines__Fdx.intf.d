lib/baselines/fdx.mli: Dataframe Fd Guardrail Stat
