lib/baselines/cords.mli: Dataframe Fd
