lib/baselines/fd.ml: Array Dataframe Fmt Hashtbl Int List Option Stdlib
