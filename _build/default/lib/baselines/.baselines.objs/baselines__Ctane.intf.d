lib/baselines/ctane.mli: Dataframe Format
