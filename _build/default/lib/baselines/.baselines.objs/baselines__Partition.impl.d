lib/baselines/partition.ml: Array Dataframe Hashtbl List Option
