(** TANE: levelwise discovery of minimal (approximate) FDs. *)

exception Out_of_budget of string

type config = {
  epsilon : float;       (** g3 tolerance as a fraction of |D| *)
  max_level : int;       (** maximum lhs size + 1 *)
  max_candidates : int;  (** lattice-width budget *)
}

val default_config : config

(** Apriori prefix join producing the next lattice level. *)
val next_level : int list list -> int list list

(** Minimal approximate FDs over the categorical attributes. Raises
    {!Out_of_budget} when the candidate lattice exceeds the budget (the
    paper's TANE out-of-memory failure on wide datasets). *)
val discover : ?config:config -> Dataframe.Frame.t -> Fd.t list
