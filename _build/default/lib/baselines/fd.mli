(** Functional dependencies and FD-based row-level error detection. *)

type t = { lhs : int list; rhs : int }

(** Raises [Invalid_argument] on empty lhs or rhs ∈ lhs. *)
val make : lhs:int list -> rhs:int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Dataframe.Schema.t -> Format.formatter -> t -> unit

(** g3-style violation count: rows to remove so each lhs group has one rhs
    value. *)
val violation_count : Dataframe.Frame.t -> t -> int

(** Approximate satisfaction: violations ≤ ε·|D|. *)
val holds : ?epsilon:float -> Dataframe.Frame.t -> t -> bool

type detector

(** Learn the lhs-combination → modal-rhs mapping on a training split. *)
val compile : Dataframe.Frame.t -> t -> detector

(** Per-row violation flags on a test split; unseen lhs combinations are
    not flagged. *)
val detect : detector list -> Dataframe.Frame.t -> bool array
