(** FDX: statistical FD discovery via a linear autoregressive model over
    the auxiliary binary distribution. *)

exception Ill_conditioned of string

type config = {
  lambda : float;     (** ridge regularization (non-strict mode) *)
  threshold : float;  (** coefficient cut-off for keeping a parent *)
  max_shifts : int;
  max_samples : int;
  strict : bool;      (** plain least squares; raise on singular systems *)
}

val default_config : config

(** Row k holds the regression coefficients of auxiliary column k on all
    others. Raises {!Ill_conditioned} in strict mode on singular systems,
    [Invalid_argument] with too few samples. *)
val autoregressive_matrix :
  ?config:config -> Guardrail.Auxdist.samples -> Stat.Linalg.mat

(** Discovered FDs over frame column indices. *)
val discover : ?config:config -> Dataframe.Frame.t -> Fd.t list
