(** CTANE: constant conditional functional dependencies. *)

exception Out_of_budget of string

type config = {
  epsilon : float;
  max_lhs : int;
  min_support : int;
  max_rules : int;
}

val default_config : config

type rule = {
  lhs : int list;
  pattern : Dataframe.Value.t list;
  rhs : int;
  value : Dataframe.Value.t;
}

val pp_rule : Dataframe.Schema.t -> Format.formatter -> rule -> unit

(** Raises {!Out_of_budget} past [max_rules]. *)
val discover : ?config:config -> Dataframe.Frame.t -> rule list

(** Per-row violation flags. *)
val detect : rule list -> Dataframe.Frame.t -> bool array
