(* CORDS (Ilyas et al., SIGMOD 2004): automatic discovery of correlations
   and soft functional dependencies from pairwise statistics.

   CORDS samples the data and, for every ordered attribute pair (a, b),
   estimates the "strength" of a -> b as |distinct(a)| / |distinct(a, b)|:
   the fraction of a-groups that map to a single b value. Pairs whose
   strength exceeds a threshold are soft FDs; chi-square on the pair's
   contingency table filters out statistically insignificant
   correlations.

   The paper's §6 critique — CORDS only sees *pairwise* correlation, so it
   cannot separate direct from transitive dependencies and keeps redundant
   FDs (a -> c alongside a -> b -> c) — is inherent to the method and
   visible in this implementation's output. *)

module Frame = Dataframe.Frame

type config = {
  strength_threshold : float;  (* soft-FD strength cut-off *)
  alpha : float;               (* chi-square significance level *)
  sample_rows : int;           (* CORDS samples the relation *)
  seed : int;
}

let default_config =
  { strength_threshold = 0.95; alpha = 0.01; sample_rows = 10_000; seed = 17 }

(* Soft-FD strength of a -> b: |distinct(a)| / |distinct(a,b)|, in (0, 1]. *)
let strength frame a b =
  let xa = Dataframe.Column.codes (Frame.column frame a) in
  let xb = Dataframe.Column.codes (Frame.column frame b) in
  let n = Array.length xa in
  if n = 0 then 0.0
  else begin
    let da = Hashtbl.create 64 and dab = Hashtbl.create 64 in
    for i = 0 to n - 1 do
      Hashtbl.replace da xa.(i) ();
      Hashtbl.replace dab (xa.(i), xb.(i)) ()
    done;
    float_of_int (Hashtbl.length da) /. float_of_int (Hashtbl.length dab)
  end

let correlated ~alpha frame a b =
  let ca = Frame.column frame a and cb = Frame.column frame b in
  let t =
    Stat.Contingency.two_way
      ~kx:(Dataframe.Column.cardinality ca)
      ~ky:(Dataframe.Column.cardinality cb)
      (Dataframe.Column.codes ca) (Dataframe.Column.codes cb)
  in
  let r = Stat.Independence.test_two_way ~alpha t in
  not r.Stat.Independence.independent

let discover ?(config = default_config) frame =
  let sampled =
    if Frame.nrows frame > config.sample_rows then
      Frame.take frame
        (Dataframe.Split.sample_indices ~seed:config.seed (Frame.nrows frame)
           config.sample_rows)
    else frame
  in
  let attrs = Frame.categorical_indices sampled in
  let fds = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then begin
            let s = strength sampled a b in
            if s >= config.strength_threshold && correlated ~alpha:config.alpha sampled a b
            then fds := Fd.make ~lhs:[ a ] ~rhs:b :: !fds
          end)
        attrs)
    attrs;
  List.rev !fds
