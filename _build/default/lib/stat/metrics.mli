(** Binary-classification metrics and rank correlation. *)

type confusion = { tp : int; fp : int; tn : int; fn : int }

(** Raises [Invalid_argument] on length mismatch. *)
val confusion : predicted:bool array -> actual:bool array -> confusion

(** NaN when undefined (empty denominator), matching how the paper reports
    degenerate cells. *)
val precision : confusion -> float

val recall : confusion -> float
val f1 : confusion -> float

(** Matthews correlation coefficient; NaN when a marginal is empty. *)
val mcc : confusion -> float

(** Fractional ranks; ties share the average rank. *)
val ranks : float array -> float array

val pearson : float array -> float array -> float

(** Spearman's rho and a large-sample two-sided p-value. *)
val spearman : float array -> float array -> float * float
