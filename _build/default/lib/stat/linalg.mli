(** Small dense linear algebra kit (row-major float matrices). *)

type mat

exception Singular

val create : int -> int -> mat
val init : int -> int -> (int -> int -> float) -> mat
val dims : mat -> int * int
val get : mat -> int -> int -> float
val set : mat -> int -> int -> float -> unit
val copy : mat -> mat
val identity : int -> mat
val transpose : mat -> mat

(** Raises [Invalid_argument] on dimension mismatch. *)
val matmul : mat -> mat -> mat

val matvec : mat -> float array -> float array

(** Gauss-Jordan with partial pivoting; raises {!Singular} on singular
    systems, [Invalid_argument] on shape mismatch. *)
val solve : mat -> mat -> mat

val inverse : mat -> mat

(** Ridge regression coefficients: argmin ||Xw - y||² + λ||w||². *)
val ridge : lambda:float -> mat -> float array -> float array

(** Unbiased sample covariance of the columns of an n×p sample matrix. *)
val covariance : mat -> mat

val pp : Format.formatter -> mat -> unit
