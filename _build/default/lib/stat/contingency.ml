(* Contingency tables over integer-coded columns.

   These feed both the conditional-independence tests that drive PC
   structure learning and the FD baselines' violation counting. *)

type table = { counts : int array array; kx : int; ky : int; total : int }

let get t x y = t.counts.(x).(y)

let row_marginals t =
  Array.map (fun row -> Array.fold_left ( + ) 0 row) t.counts

let col_marginals t =
  let m = Array.make t.ky 0 in
  Array.iter (fun row -> Array.iteri (fun j c -> m.(j) <- m.(j) + c) row) t.counts;
  m

(* Two-way table of codes [xs] against [ys] with cardinalities [kx], [ky]. *)
let two_way ~kx ~ky xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Contingency.two_way: length mismatch";
  let counts = Array.make_matrix kx ky 0 in
  for i = 0 to n - 1 do
    let x = xs.(i) and y = ys.(i) in
    counts.(x).(y) <- counts.(x).(y) + 1
  done;
  { counts; kx; ky; total = n }

(* Mixed-radix stratum identifier for a conditioning set. Returns a stratum
   id per row plus the number of strata. Cardinality products are capped by
   the caller via [max_strata]; we return [None] when exceeded so tests can
   declare themselves underpowered instead of allocating huge tables. *)
let strata ~max_strata cond_codes cond_cards n =
  let k = List.length cond_codes in
  if k = 0 then Some (Array.make n 0, 1)
  else begin
    let prod =
      List.fold_left
        (fun acc c -> if acc > max_strata then acc else acc * c)
        1 cond_cards
    in
    if prod > max_strata then None
    else begin
      let ids = Array.make n 0 in
      List.iter2
        (fun codes card ->
          for i = 0 to n - 1 do
            ids.(i) <- (ids.(i) * card) + codes.(i)
          done)
        cond_codes cond_cards;
      Some (ids, prod)
    end
  end

(* Stratified two-way tables: one per non-empty stratum of the conditioning
   set. Strata are stored sparsely. [max_cells] bounds the total allocation
   (distinct strata x kx x ky): very high-cardinality variables would
   otherwise demand gigabytes — the practical reason identity-sampled CI
   tests collapse on such data (paper Table 8). *)
let conditional ~kx ~ky ~max_strata ?(max_cells = 4_000_000) xs ys cond_codes
    cond_cards =
  let n = Array.length xs in
  match strata ~max_strata cond_codes cond_cards n with
  | None -> None
  | Some (ids, _) when
      (let distinct = Hashtbl.create 64 in
       Array.iter (fun id -> Hashtbl.replace distinct id ()) ids;
       Hashtbl.length distinct * kx * ky > max_cells) ->
    None
  | Some (ids, _) ->
    let tbl : (int, int array array) Hashtbl.t = Hashtbl.create 64 in
    for i = 0 to n - 1 do
      let counts =
        match Hashtbl.find_opt tbl ids.(i) with
        | Some c -> c
        | None ->
          let c = Array.make_matrix kx ky 0 in
          Hashtbl.add tbl ids.(i) c;
          c
      in
      counts.(xs.(i)).(ys.(i)) <- counts.(xs.(i)).(ys.(i)) + 1
    done;
    let tables =
      Hashtbl.fold
        (fun _ counts acc ->
          let total =
            Array.fold_left
              (fun a row -> a + Array.fold_left ( + ) 0 row)
              0 counts
          in
          { counts; kx; ky; total } :: acc)
        tbl []
    in
    Some tables
