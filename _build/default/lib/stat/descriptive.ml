(* Descriptive statistics used by the query-error experiments (Fig. 6):
   L1 distances, relative errors and min-max normalization. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then Float.nan
  else begin
    let m = mean xs in
    let s = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    s /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

(* Min-max normalize into [0, 1]; constant arrays normalize to all zeros. *)
let normalize xs =
  let lo, hi = min_max xs in
  let range = hi -. lo in
  if range = 0.0 then Array.map (fun _ -> 0.0) xs
  else Array.map (fun x -> (x -. lo) /. range) xs

let l1_distance a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Descriptive.l1_distance: length mismatch";
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. Float.abs (a.(i) -. b.(i))
  done;
  !s

let l1_norm a = Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0 a

(* Relative L1 error of [observed] against [reference]; the paper's Fig. 6
   metric. A zero-norm reference with nonzero error reports infinity. *)
let relative_error ~reference ~observed =
  let d = l1_distance reference observed in
  let n = l1_norm reference in
  if n = 0.0 then (if d = 0.0 then 0.0 else Float.infinity) else d /. n
