(* Special functions needed for p-values: log-gamma (Lanczos), the
   regularized incomplete gamma functions (series + continued fraction),
   and the chi-square survival function built on top of them. *)

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: x must be positive";
  (* Lanczos approximation, g = 7, n = 9 *)
  let coefficients =
    [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
       771.32342877765313; -176.61502916214059; 12.507343278686905;
       -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]
  in
  if x < 0.5 then
    (* reflection formula *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma_pos (1.0 -. x) coefficients
  else log_gamma_pos x coefficients

and log_gamma_pos x coefficients =
  let x = x -. 1.0 in
  let a = ref coefficients.(0) in
  let t = x +. 7.5 in
  for i = 1 to 8 do
    a := !a +. (coefficients.(i) /. (x +. float_of_int i))
  done;
  (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

(* Regularized lower incomplete gamma P(a, x) by series expansion;
   converges well for x < a + 1. *)
let gamma_p_series a x =
  let gln = log_gamma a in
  let rec go ap sum del n =
    if n > 500 then sum
    else
      let ap = ap +. 1.0 in
      let del = del *. x /. ap in
      let sum = sum +. del in
      if Float.abs del < Float.abs sum *. 1e-14 then sum else go ap sum del (n + 1)
  in
  if x <= 0.0 then 0.0
  else
    let sum = go a (1.0 /. a) (1.0 /. a) 0 in
    sum *. exp ((-.x) +. (a *. log x) -. gln)

(* Regularized upper incomplete gamma Q(a, x) by Lentz continued fraction;
   converges well for x >= a + 1. *)
let gamma_q_cf a x =
  let gln = log_gamma a in
  let fpmin = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fpmin) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue = ref true in
  while !continue && !i <= 500 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if Float.abs !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < 1e-14 then continue := false;
    incr i
  done;
  exp ((-.x) +. (a *. log x) -. gln) *. !h

let gamma_p a x =
  if a <= 0.0 then invalid_arg "Special.gamma_p: a must be positive";
  if x < 0.0 then invalid_arg "Special.gamma_p: x must be non-negative";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_cf a x

let gamma_q a x = 1.0 -. gamma_p a x

(* Survival function of the chi-square distribution with [df] degrees of
   freedom: P(X >= x). *)
let chi2_sf ~df x =
  if df <= 0 then invalid_arg "Special.chi2_sf: df must be positive";
  if x <= 0.0 then 1.0 else gamma_q (float_of_int df /. 2.0) (x /. 2.0)

(* Abramowitz–Stegun 7.1.26 rational approximation of erf;
   max absolute error 1.5e-7, plenty for rank-correlation p-values. *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736)
        *. t
       +. 0.254829592)
       *. t
       *. exp (-.x *. x)
  in
  sign *. y

(* Two-sided normal tail probability. *)
let normal_sf_two_sided z = 1.0 -. erf (Float.abs z /. sqrt 2.0)
