(* Deterministic PRNG: splitmix64 seeding + xoshiro256** stream.

   Every stochastic step in the reproduction (data generation, error
   injection, auxiliary-distribution sampling) takes an explicit seed so
   experiments are bit-for-bit reproducible. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(* Uniform int in [0, bound). Rejection-free modulo is fine here: bounds are
   tiny relative to 2^63 so the bias is negligible for statistics. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* drop 2 bits so the Int64 -> int truncation stays non-negative *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(* Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Derive an independent child generator; used to give each dataset /
   experiment its own stream. *)
let split t =
  let seed = Int64.to_int (next_int64 t) in
  create seed

(* Sample an index from unnormalized non-negative weights. *)
let categorical t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.categorical: weights sum to zero";
  let x = float t *. total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
