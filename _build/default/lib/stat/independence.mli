(** Conditional-independence tests on categorical data. *)

type statistic = Chi_square | G_test

type result = { stat : float; df : int; p_value : float; independent : bool }

(** Cramér's-V-style effect size of a summed statistic. *)
val effect_size : kx:int -> ky:int -> n:int -> float -> float

(** Unconditional chi-square / G test of a two-way table. Degenerate tables
    (no two non-empty rows and columns) report independence with p = 1.
    [min_effect] is a Cramér's V floor guarding against negligible but
    statistically significant dependence on large samples. *)
val test_two_way :
  ?kind:statistic -> ?min_effect:float -> alpha:float -> Contingency.table -> result

(** Stratified conditional-independence test of [xs ⊥ ys | cond]. When the
    conditioning stratum space exceeds [max_strata] or carries no signal,
    reports independence (the PC algorithm then drops the edge) — the
    failure mode of the identity sampler in Table 8 of the paper.
    [stat_scale] deflates the statistic before the significance and effect
    checks — a design-effect correction for non-iid (e.g. circular-shift)
    samples. *)
val ci_test :
  ?kind:statistic ->
  ?max_strata:int ->
  ?min_effect:float ->
  ?stat_scale:float ->
  alpha:float ->
  kx:int ->
  ky:int ->
  int array ->
  int array ->
  int array list ->
  int list ->
  result

(** Cramér's V effect size in [0, 1]. *)
val cramers_v : Contingency.table -> float

(** Mutual information (nats) of a two-way table. *)
val mutual_information : Contingency.table -> float
