lib/stat/metrics.ml: Array Float Special
