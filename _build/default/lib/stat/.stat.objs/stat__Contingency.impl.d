lib/stat/contingency.ml: Array Hashtbl List
