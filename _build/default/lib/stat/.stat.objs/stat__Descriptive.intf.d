lib/stat/descriptive.mli:
