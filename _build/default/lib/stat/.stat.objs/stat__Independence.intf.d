lib/stat/independence.mli: Contingency
