lib/stat/linalg.mli: Format
