lib/stat/descriptive.ml: Array Float
