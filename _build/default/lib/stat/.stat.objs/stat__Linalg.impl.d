lib/stat/linalg.ml: Array Float Fmt
