lib/stat/special.mli:
