lib/stat/contingency.mli:
