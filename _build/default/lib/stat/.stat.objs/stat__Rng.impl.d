lib/stat/rng.ml: Array Int64
