lib/stat/rng.mli:
