lib/stat/independence.ml: Array Contingency List Special
