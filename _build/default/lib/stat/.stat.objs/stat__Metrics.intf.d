lib/stat/metrics.mli:
