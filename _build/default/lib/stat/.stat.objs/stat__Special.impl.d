lib/stat/special.ml: Array Float
