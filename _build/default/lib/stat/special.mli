(** Special functions for p-value computation. *)

(** Log of the gamma function (Lanczos approximation); raises
    [Invalid_argument] for non-positive input. *)
val log_gamma : float -> float

(** Regularized lower incomplete gamma P(a, x). *)
val gamma_p : float -> float -> float

(** Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x). *)
val gamma_q : float -> float -> float

(** Chi-square survival function with [df] degrees of freedom. *)
val chi2_sf : df:int -> float -> float

(** Error function (Abramowitz–Stegun 7.1.26, |err| < 1.5e-7). *)
val erf : float -> float

(** Two-sided standard-normal tail probability of [z]. *)
val normal_sf_two_sided : float -> float
