(* Binary-classification metrics used throughout the evaluation:
   F1 and MCC for error detection (Table 3), precision/recall for
   mis-prediction analysis (Table 5), and Spearman rank correlation for
   the error/mis-prediction association (§5). *)

type confusion = { tp : int; fp : int; tn : int; fn : int }

let confusion ~predicted ~actual =
  let n = Array.length predicted in
  if Array.length actual <> n then invalid_arg "Metrics.confusion: length mismatch";
  let tp = ref 0 and fp = ref 0 and tn = ref 0 and fn = ref 0 in
  for i = 0 to n - 1 do
    match predicted.(i), actual.(i) with
    | true, true -> incr tp
    | true, false -> incr fp
    | false, true -> incr fn
    | false, false -> incr tn
  done;
  { tp = !tp; fp = !fp; tn = !tn; fn = !fn }

let precision c =
  let d = c.tp + c.fp in
  if d = 0 then Float.nan else float_of_int c.tp /. float_of_int d

let recall c =
  let d = c.tp + c.fn in
  if d = 0 then Float.nan else float_of_int c.tp /. float_of_int d

let f1 c =
  let p = precision c and r = recall c in
  if Float.is_nan p || Float.is_nan r || p +. r = 0.0 then Float.nan
  else 2.0 *. p *. r /. (p +. r)

(* Matthews correlation coefficient; NaN when any marginal is empty, which
   is also how the paper reports degenerate cells in Table 3. *)
let mcc c =
  let tp = float_of_int c.tp
  and fp = float_of_int c.fp
  and tn = float_of_int c.tn
  and fn = float_of_int c.fn in
  let denom = (tp +. fp) *. (tp +. fn) *. (tn +. fp) *. (tn +. fn) in
  if denom <= 0.0 then Float.nan
  else ((tp *. tn) -. (fp *. fn)) /. sqrt denom

(* Fractional ranks with ties sharing the average rank. *)
let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2.0 +. 1.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Metrics.pearson: length mismatch";
  if n < 2 then Float.nan
  else begin
    let fn = float_of_int n in
    let mean a = Array.fold_left ( +. ) 0.0 a /. fn in
    let mx = mean xs and my = mean ys in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then Float.nan
    else !sxy /. sqrt (!sxx *. !syy)
  end

(* Spearman rank correlation with a t-distribution-free large-sample
   p-value (normal approximation on sqrt(n-1) * rho). *)
let spearman xs ys =
  let rho = pearson (ranks xs) (ranks ys) in
  let n = Array.length xs in
  let p =
    if Float.is_nan rho || n < 3 then Float.nan
    else Special.normal_sf_two_sided (rho *. sqrt (float_of_int (n - 1)))
  in
  (rho, p)
