(* Small dense linear algebra kit: just enough for the FDX baseline
   (covariance estimation, ridge-regularized least squares) without an
   external dependency. Matrices are row-major float arrays. *)

type mat = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) in
  { rows; cols; data }

let dims m = (m.rows, m.cols)
let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v
let copy m = { m with data = Array.copy m.data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Linalg.matmul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          set c i j (get c i j +. (aik *. get b k j))
        done
    done
  done;
  c

let matvec a x =
  if a.cols <> Array.length x then invalid_arg "Linalg.matvec: dimension mismatch";
  Array.init a.rows (fun i ->
      let s = ref 0.0 in
      for j = 0 to a.cols - 1 do
        s := !s +. (get a i j *. x.(j))
      done;
      !s)

exception Singular

(* Gauss-Jordan elimination with partial pivoting. Solves A * X = B for X,
   destroying working copies. Raises [Singular] when no pivot exceeds the
   tolerance. *)
let solve a b =
  if a.rows <> a.cols then invalid_arg "Linalg.solve: matrix not square";
  if a.rows <> b.rows then invalid_arg "Linalg.solve: rhs mismatch";
  let n = a.rows in
  let m = copy a in
  let x = copy b in
  for col = 0 to n - 1 do
    (* pivot *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs (get m r col) > Float.abs (get m !pivot col) then pivot := r
    done;
    if Float.abs (get m !pivot col) < 1e-12 then raise Singular;
    if !pivot <> col then begin
      for j = 0 to n - 1 do
        let t = get m col j in
        set m col j (get m !pivot j);
        set m !pivot j t
      done;
      for j = 0 to x.cols - 1 do
        let t = get x col j in
        set x col j (get x !pivot j);
        set x !pivot j t
      done
    end;
    let inv = 1.0 /. get m col col in
    for j = 0 to n - 1 do
      set m col j (get m col j *. inv)
    done;
    for j = 0 to x.cols - 1 do
      set x col j (get x col j *. inv)
    done;
    for r = 0 to n - 1 do
      if r <> col then begin
        let f = get m r col in
        if f <> 0.0 then begin
          for j = 0 to n - 1 do
            set m r j (get m r j -. (f *. get m col j))
          done;
          for j = 0 to x.cols - 1 do
            set x r j (get x r j -. (f *. get x col j))
          done
        end
      end
    done
  done;
  x

let inverse a = solve a (identity a.rows)

(* Ridge regression: argmin_w ||X w - y||^2 + lambda ||w||^2, returned as a
   coefficient vector. X is n-by-p, y length n. *)
let ridge ~lambda x y =
  let xt = transpose x in
  let xtx = matmul xt x in
  let p = xtx.rows in
  for i = 0 to p - 1 do
    set xtx i i (get xtx i i +. lambda)
  done;
  let xty = matvec xt y in
  let rhs = init p 1 (fun i _ -> xty.(i)) in
  let w = solve xtx rhs in
  Array.init p (fun i -> get w i 0)

(* Sample covariance matrix of columns of X (n-by-p), unbiased. *)
let covariance x =
  let n, p = dims x in
  if n < 2 then invalid_arg "Linalg.covariance: need at least 2 samples";
  let mean = Array.make p 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to p - 1 do
      mean.(j) <- mean.(j) +. get x i j
    done
  done;
  Array.iteri (fun j s -> mean.(j) <- s /. float_of_int n) mean;
  let c = create p p in
  for i = 0 to n - 1 do
    for j = 0 to p - 1 do
      let dj = get x i j -. mean.(j) in
      for k = j to p - 1 do
        let dk = get x i k -. mean.(k) in
        set c j k (get c j k +. (dj *. dk))
      done
    done
  done;
  for j = 0 to p - 1 do
    for k = j to p - 1 do
      let v = get c j k /. float_of_int (n - 1) in
      set c j k v;
      set c k j v
    done
  done;
  c

let pp ppf m =
  Fmt.pf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      Fmt.pf ppf "%8.4f " (get m i j)
    done;
    Fmt.pf ppf "@,"
  done;
  Fmt.pf ppf "@]"
