(** Descriptive statistics for the query-error experiments. *)

val mean : float array -> float
val variance : float array -> float
val std : float array -> float

(** Raises [Invalid_argument] on an empty array. *)
val min_max : float array -> float * float

(** Min-max normalize into [0, 1]; constant input maps to all zeros. *)
val normalize : float array -> float array

val l1_distance : float array -> float array -> float
val l1_norm : float array -> float

(** Relative L1 error of [observed] against [reference]; infinity when the
    reference has zero norm but the error does not. *)
val relative_error : reference:float array -> observed:float array -> float
