(** Deterministic PRNG: splitmix64 seeding + xoshiro256** stream. *)

type t

val create : int -> t

val next_int64 : t -> int64

(** Uniform int in [0, bound); raises [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Derive an independent child generator. *)
val split : t -> t

(** Sample an index proportional to unnormalized non-negative weights;
    raises [Invalid_argument] when they sum to zero. *)
val categorical : t -> float array -> int

val shuffle_in_place : t -> 'a array -> unit
