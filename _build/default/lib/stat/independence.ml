(* Conditional-independence tests on categorical data.

   The PC algorithm (lib/pgm) asks "is a_i independent of a_j given Z?".
   We answer with the classical stratified chi-square (or G) test: compute
   the two-way statistic inside every stratum of Z, sum statistics and
   degrees of freedom, and compare against the chi-square survival
   function. Degrees of freedom inside a stratum only count rows/columns
   with non-zero marginals, which keeps sparse tables honest. *)

type statistic = Chi_square | G_test

type result = { stat : float; df : int; p_value : float; independent : bool }

(* Statistic and df of one table; tables with fewer than two non-empty rows
   or columns contribute nothing. *)
let table_stat kind (t : Contingency.table) =
  let rm = Contingency.row_marginals t in
  let cm = Contingency.col_marginals t in
  let nz_rows = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 rm in
  let nz_cols = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 cm in
  if nz_rows < 2 || nz_cols < 2 || t.total = 0 then (0.0, 0)
  else begin
    let n = float_of_int t.total in
    let stat = ref 0.0 in
    for x = 0 to t.kx - 1 do
      if rm.(x) > 0 then
        for y = 0 to t.ky - 1 do
          if cm.(y) > 0 then begin
            let expected = float_of_int rm.(x) *. float_of_int cm.(y) /. n in
            let observed = float_of_int (Contingency.get t x y) in
            match kind with
            | Chi_square ->
              let d = observed -. expected in
              stat := !stat +. (d *. d /. expected)
            | G_test ->
              if observed > 0.0 then
                stat := !stat +. (2.0 *. observed *. log (observed /. expected))
          end
        done
    done;
    (!stat, (nz_rows - 1) * (nz_cols - 1))
  end

(* Cramér's-V-style effect size from a summed statistic. *)
let effect_size ~kx ~ky ~n stat =
  let k = min kx ky in
  if n <= 0 || k < 2 then 0.0
  else sqrt (stat /. (float_of_int n *. float_of_int (k - 1)))

(* Unconditional test. [min_effect] is an effect-size floor: with very
   large samples, negligible dependencies become statistically
   significant; requiring a minimal Cramér's V keeps the skeleton
   honest. *)
let test_two_way ?(kind = Chi_square) ?(min_effect = 0.0) ~alpha table =
  let stat, df = table_stat kind table in
  if df = 0 then { stat = 0.0; df = 0; p_value = 1.0; independent = true }
  else begin
    let p_value = Special.chi2_sf ~df stat in
    let effect =
      effect_size ~kx:table.Contingency.kx ~ky:table.Contingency.ky
        ~n:table.Contingency.total stat
    in
    { stat; df; p_value; independent = p_value > alpha || effect < min_effect }
  end

(* Conditional test: sum per-stratum statistics and dfs. When the stratum
   space exceeds [max_strata] (curse of dimensionality), or no stratum has
   enough data, we conservatively declare independence: with no usable
   signal, the PC algorithm should not keep an edge. This mirrors the
   "identity sampler becomes unusable on high-cardinality data" failure
   mode discussed in the paper's ablation (Table 8). *)
(* [stat_scale] deflates the summed statistic before significance and
   effect-size checks — the design-effect correction for non-iid samples
   (the circular-shift sampler reuses every row once per shift). *)
let ci_test ?(kind = Chi_square) ?(max_strata = 4096) ?(min_effect = 0.0)
    ?(stat_scale = 1.0) ~alpha ~kx ~ky xs ys cond_codes cond_cards =
  match
    Contingency.conditional ~kx ~ky ~max_strata xs ys cond_codes cond_cards
  with
  | None -> { stat = 0.0; df = 0; p_value = 1.0; independent = true }
  | Some tables ->
    let stat, df, n =
      List.fold_left
        (fun (s, d, n) t ->
          let s', d' = table_stat kind t in
          (s +. s', d + d', if d' > 0 then n + t.Contingency.total else n))
        (0.0, 0, 0) tables
    in
    if df = 0 then { stat = 0.0; df = 0; p_value = 1.0; independent = true }
    else begin
      let stat = stat *. stat_scale in
      let n = int_of_float (float_of_int n *. stat_scale) in
      let p_value = Special.chi2_sf ~df stat in
      let effect = effect_size ~kx ~ky ~n stat in
      { stat; df; p_value; independent = p_value > alpha || effect < min_effect }
    end

(* Cramér's V effect size of a two-way table, in [0, 1]. *)
let cramers_v table =
  let stat, _ = table_stat Chi_square table in
  let k = min table.Contingency.kx table.Contingency.ky in
  if table.Contingency.total = 0 || k < 2 then 0.0
  else sqrt (stat /. (float_of_int table.Contingency.total *. float_of_int (k - 1)))

(* Mutual information (nats) of a two-way table. *)
let mutual_information (t : Contingency.table) =
  if t.total = 0 then 0.0
  else begin
    let n = float_of_int t.total in
    let rm = Contingency.row_marginals t in
    let cm = Contingency.col_marginals t in
    let mi = ref 0.0 in
    for x = 0 to t.kx - 1 do
      for y = 0 to t.ky - 1 do
        let o = Contingency.get t x y in
        if o > 0 then begin
          let pxy = float_of_int o /. n in
          let px = float_of_int rm.(x) /. n in
          let py = float_of_int cm.(y) /. n in
          mi := !mi +. (pxy *. log (pxy /. (px *. py)))
        end
      done
    done;
    !mi
  end
