(** Directed acyclic graphs over nodes [0 .. n-1]. The structure is not
    forced acyclic on construction; use {!is_acyclic} /
    {!topological_sort}. *)

type t

val create : int -> t
val size : t -> int
val parents : t -> int -> int list
val parent_set : t -> int -> Set.Make(Int).t
val children : t -> int -> int list
val has_edge : t -> int -> int -> bool

(** Functional edge insertion; raises [Invalid_argument] on self loops or
    out-of-range nodes. *)
val add_edge : t -> int -> int -> t

val remove_edge : t -> int -> int -> t
val of_edges : int -> (int * int) list -> t
val edges : t -> (int * int) list
val edge_count : t -> int

(** Kahn's algorithm; [None] when the graph has a directed cycle. *)
val topological_sort : t -> int list option

val is_acyclic : t -> bool

(** Directed reachability. *)
val reaches : t -> int -> int -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

(** Unordered v-structures [u -> v <- w] with non-adjacent spouses, as
    sorted [(min u w, v, max u w)] triples. *)
val v_structures : t -> (int * int * int) list

val pp : Format.formatter -> t -> unit
