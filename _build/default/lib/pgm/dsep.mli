(** d-separation (Bayes-ball reachability). *)

(** Is every path between [x] and [y] blocked by the conditioning set? *)
val d_separated : Dag.t -> int -> int -> int list -> bool

(** Exact conditional-independence oracle for {!Pc}. *)
val oracle : Dag.t -> int -> int -> int list -> bool
