(** Meek's orientation rules (Meek 1995). *)

val rule1 : Pdag.t -> bool
val rule2 : Pdag.t -> bool
val rule3 : Pdag.t -> bool
val rule4 : Pdag.t -> bool

(** Apply R1–R4 until fixpoint. Mutates and returns the argument. *)
val close : Pdag.t -> Pdag.t
