(* Discrete Bayesian networks with explicit CPTs and forward sampling.

   This is the structural-equation-model substrate (paper Def. 4.3): every
   node computes its value from its parents' values plus exogenous noise.
   The data generators in lib/datagen build their ground-truth DGPs here,
   which is what lets the evaluation measure detection quality against a
   *known* generating process. *)

type node = {
  name : string;
  card : int;                  (* domain size *)
  parents : int list;          (* indices of parent nodes *)
  cpt : float array array;     (* parent configuration -> distribution *)
}

type t = { nodes : node array; order : int list }

let node_count t = Array.length t.nodes
let node t i = t.nodes.(i)
let name t i = t.nodes.(i).name
let cardinality t i = t.nodes.(i).card

(* Parent configuration index: mixed radix over parent values, most
   significant parent first (the order in [parents]). *)
let config_index t i values =
  List.fold_left
    (fun acc p -> (acc * t.nodes.(p).card) + values.(p))
    0 t.nodes.(i).parents

let config_count t i =
  List.fold_left (fun acc p -> acc * t.nodes.(p).card) 1 t.nodes.(i).parents

let validate nodes =
  let n = Array.length nodes in
  Array.iteri
    (fun i nd ->
      if nd.card < 1 then invalid_arg "Bayes_net: node cardinality < 1";
      List.iter
        (fun p ->
          if p < 0 || p >= n then invalid_arg "Bayes_net: parent out of range";
          if p = i then invalid_arg "Bayes_net: self parent")
        nd.parents)
    nodes;
  let g =
    Dag.of_edges n
      (Array.to_list nodes
      |> List.mapi (fun i nd -> List.map (fun p -> (p, i)) nd.parents)
      |> List.concat)
  in
  match Dag.topological_sort g with
  | None -> invalid_arg "Bayes_net: cyclic parent structure"
  | Some order -> order

let create nodes =
  let nodes = Array.of_list nodes in
  let order = validate nodes in
  let t = { nodes; order } in
  (* CPT shape check *)
  Array.iteri
    (fun i nd ->
      let configs = config_count t i in
      if Array.length nd.cpt <> configs then
        invalid_arg
          (Printf.sprintf "Bayes_net: node %s has %d CPT rows, expected %d"
             nd.name (Array.length nd.cpt) configs);
      Array.iter
        (fun dist ->
          if Array.length dist <> nd.card then
            invalid_arg (Printf.sprintf "Bayes_net: bad CPT row arity at %s" nd.name))
        nd.cpt)
    nodes;
  t

let to_dag t =
  let n = node_count t in
  Dag.of_edges n
    (Array.to_list t.nodes
    |> List.mapi (fun i nd -> List.map (fun p -> (p, i)) nd.parents)
    |> List.concat)

(* Draw one joint sample as a value-index array. *)
let sample t rng =
  let values = Array.make (node_count t) 0 in
  List.iter
    (fun i ->
      let nd = t.nodes.(i) in
      let dist = nd.cpt.(config_index t i values) in
      values.(i) <- Stat.Rng.categorical rng dist)
    t.order;
  values

let sample_many t rng k = Array.init k (fun _ -> sample t rng)

(* CPT helper: a deterministic function of the parents flipped to a uniform
   random other value with probability [noise]. [f] maps the parent value
   list (in [parents] order) to the output value index. *)
let noisy_function_cpt ~card ~parent_cards ~noise f =
  let configs = List.fold_left ( * ) 1 parent_cards in
  Array.init configs (fun cfg ->
      (* decode cfg into parent values, most significant first *)
      let rec decode cfg = function
        | [] -> []
        | [ _ ] -> [ cfg ]
        | _ :: rest ->
          let tail_size = List.fold_left ( * ) 1 rest in
          (cfg / tail_size) :: decode (cfg mod tail_size) rest
      in
      let parent_values = decode cfg parent_cards in
      let target = f parent_values in
      if target < 0 || target >= card then
        invalid_arg "noisy_function_cpt: function value out of range";
      Array.init card (fun v ->
          if card = 1 then 1.0
          else if v = target then 1.0 -. noise
          else noise /. float_of_int (card - 1)))

(* CPT helper: marginal distribution for root nodes. *)
let root_cpt dist = [| dist |]

(* CPT helper: uniform distribution regardless of parents. *)
let uniform_cpt ~card ~parent_cards =
  let configs = List.fold_left ( * ) 1 parent_cards in
  Array.init configs (fun _ -> Array.make card (1.0 /. float_of_int card))
