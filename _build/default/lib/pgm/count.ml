(* Counting labelled DAGs: Robinson's recurrence

     a(n) = sum_{k=1..n} (-1)^{k+1} C(n, k) 2^{k(n-k)} a(n-k),  a(0) = 1.

   Used for the "search space without MEC" column of Table 7: the number
   of candidate structures an unguided synthesizer would have to consider.
   Values explode (a(40) ~ 10^276), so we compute in floating point; exact
   integers are irrelevant at these magnitudes. *)

let binomial n k =
  let k = min k (n - k) in
  let rec go acc i =
    if i > k then acc
    else go (acc *. float_of_int (n - k + i) /. float_of_int i) (i + 1)
  in
  if k < 0 then 0.0 else go 1.0 1

let labelled_dags =
  let cache = Hashtbl.create 64 in
  let rec a n =
    if n <= 0 then 1.0
    else
      match Hashtbl.find_opt cache n with
      | Some v -> v
      | None ->
        let total = ref 0.0 in
        for k = 1 to n do
          let sign = if k mod 2 = 1 then 1.0 else -1.0 in
          let term =
            sign *. binomial n k
            *. Float.pow 2.0 (float_of_int (k * (n - k)))
            *. a (n - k)
          in
          total := !total +. term
        done;
        Hashtbl.add cache n !total;
        !total
  in
  a

(* Pretty scientific form like "2.20e13" for table rendering. *)
let scientific v =
  if v < 1e6 then Printf.sprintf "%.0f" v else Printf.sprintf "%.2e" v
