(* The PC algorithm (Spirtes-Glymour-Scheines).

   Input: a conditional-independence oracle over variables 0 .. n-1.
   Output: the CPDAG of the Markov equivalence class.

   Phases:
     1. skeleton  - start from the complete graph; for growing conditioning
                    sizes l, remove the edge i-j if some S of size l inside
                    adj(i)\{j} (or adj(j)\{i}) renders i and j independent;
                    remember S as sepset(i, j).
     2. colliders - for every unshielded triple i - k - j, orient i->k<-j
                    when k is not in sepset(i, j).
     3. Meek      - propagate with rules R1-R4.

   The oracle [indep i j cond] answers "is a_i independent of a_j given
   cond?". The data-driven oracle lives in lib/stat; tests also use exact
   d-separation oracles from Dsep. *)

type sepsets = (int * int, int list) Hashtbl.t

let sepset_key i j = (min i j, max i j)

let find_sepset sepsets i j = Hashtbl.find_opt sepsets (sepset_key i j)

(* All subsets of size [k] of [items]. *)
let rec subsets_of_size k items =
  if k = 0 then [ [] ]
  else
    match items with
    | [] -> []
    | x :: rest ->
      let with_x = List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest) in
      with_x @ subsets_of_size k rest

let skeleton ~n ?(max_cond = 3) indep =
  let g = Pdag.complete n in
  let sepsets : sepsets = Hashtbl.create 64 in
  let level = ref 0 in
  let continue = ref true in
  while !continue && !level <= max_cond do
    let l = !level in
    (* any node with enough neighbours to test at this level? *)
    let worth_continuing = ref false in
    let edges = Pdag.undirected_edges g in
    List.iter
      (fun (i, j) ->
        if Pdag.has_undirected g i j then begin
          let adj_i = List.filter (fun x -> x <> j) (Pdag.neighbors g i) in
          let adj_j = List.filter (fun x -> x <> i) (Pdag.neighbors g j) in
          if List.length adj_i > l || List.length adj_j > l then
            worth_continuing := true;
          let candidates =
            subsets_of_size l adj_i
            @ (if l > 0 then subsets_of_size l adj_j else [])
          in
          let rec try_sets = function
            | [] -> ()
            | s :: rest ->
              if indep i j s then begin
                Pdag.remove_edge g i j;
                Hashtbl.replace sepsets (sepset_key i j) s
              end
              else try_sets rest
          in
          try_sets candidates
        end)
      edges;
    continue := !worth_continuing;
    incr level
  done;
  (g, sepsets)

(* Orient unshielded colliders. *)
let orient_v_structures g sepsets =
  let n = Pdag.size g in
  for k = 0 to n - 1 do
    let nbrs = Pdag.undirected_neighbors g k in
    List.iteri
      (fun a i ->
        List.iteri
          (fun b j ->
            if b > a && not (Pdag.adjacent g i j) then begin
              let sep = Option.value ~default:[] (find_sepset sepsets i j) in
              if not (List.mem k sep) then begin
                (* i -> k <- j, but never re-orient an edge a previous
                   collider already directed *)
                if Pdag.has_undirected g i k then Pdag.orient g i k;
                if Pdag.has_undirected g j k then Pdag.orient g j k
              end
            end)
          nbrs)
      nbrs
  done

let cpdag ~n ?max_cond indep =
  let g, sepsets = skeleton ~n ?max_cond indep in
  orient_v_structures g sepsets;
  ignore (Meek.close g);
  (g, sepsets)
