(** Enumerate the DAGs of a Markov equivalence class given its CPDAG. *)

(** Would orienting [u -> v] create a new unshielded collider? *)
val creates_new_collider : Pdag.t -> int -> int -> bool

(** Would orienting [u -> v] close a directed cycle? *)
val creates_cycle : Pdag.t -> int -> int -> bool

val admissible : Pdag.t -> int -> int -> bool

(** All consistent DAG extensions, capped at [max_dags] (default 10000);
    the flag reports truncation. *)
val consistent_extensions : ?max_dags:int -> Pdag.t -> Dag.t list * bool

val count_extensions : ?max_dags:int -> Pdag.t -> int * bool
