(* Partially directed graphs: the output representation of the PC
   algorithm (a CPDAG summarising a Markov equivalence class).

   Edges are either directed (u -> v) or undirected (u - v). The structure
   is mutable for the orientation phases; callers clone before branching. *)

type t = {
  n : int;
  directed : bool array array;   (* directed.(u).(v) : u -> v *)
  undirected : bool array array; (* symmetric *)
}

let create n =
  { n;
    directed = Array.make_matrix n n false;
    undirected = Array.make_matrix n n false }

let size t = t.n

let copy t =
  { n = t.n;
    directed = Array.map Array.copy t.directed;
    undirected = Array.map Array.copy t.undirected }

let has_directed t u v = t.directed.(u).(v)
let has_undirected t u v = t.undirected.(u).(v)
let adjacent t u v = t.directed.(u).(v) || t.directed.(v).(u) || t.undirected.(u).(v)

let add_undirected t u v =
  if u = v then invalid_arg "Pdag.add_undirected: self loop";
  t.undirected.(u).(v) <- true;
  t.undirected.(v).(u) <- true

let remove_edge t u v =
  t.undirected.(u).(v) <- false;
  t.undirected.(v).(u) <- false;
  t.directed.(u).(v) <- false;
  t.directed.(v).(u) <- false

(* Turn the edge between u and v (in whatever state) into u -> v. *)
let orient t u v =
  t.undirected.(u).(v) <- false;
  t.undirected.(v).(u) <- false;
  t.directed.(v).(u) <- false;
  t.directed.(u).(v) <- true

let complete n =
  let t = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      add_undirected t u v
    done
  done;
  t

let neighbors t v =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    if adjacent t u v then acc := u :: !acc
  done;
  !acc

let undirected_neighbors t v =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    if t.undirected.(u).(v) then acc := u :: !acc
  done;
  !acc

let parents t v =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    if t.directed.(u).(v) then acc := u :: !acc
  done;
  !acc

let children t v =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    if t.directed.(v).(u) then acc := u :: !acc
  done;
  !acc

let directed_edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    for v = t.n - 1 downto 0 do
      if t.directed.(u).(v) then acc := (u, v) :: !acc
    done
  done;
  !acc

let undirected_edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    for v = u - 1 downto 0 do
      if t.undirected.(u).(v) then acc := (v, u) :: !acc
    done
  done;
  !acc

let fully_directed t = undirected_edges t = []

(* View as a DAG; fails when undirected edges remain or a cycle exists. *)
let to_dag t =
  if not (fully_directed t) then None
  else begin
    let g = Dag.of_edges t.n (directed_edges t) in
    if Dag.is_acyclic g then Some g else None
  end

let of_dag g =
  let n = Dag.size g in
  let t = create n in
  List.iter (fun (u, v) -> t.directed.(u).(v) <- true) (Dag.edges g);
  t

(* Is there a (partially) directed path from u to v using only directed
   edges? Used for cycle avoidance during orientation. *)
let directed_reaches t u v =
  let visited = Array.make t.n false in
  let rec go x =
    if x = v then true
    else if visited.(x) then false
    else begin
      visited.(x) <- true;
      List.exists go (children t x)
    end
  in
  go u

let equal a b =
  a.n = b.n
  && a.directed = b.directed
  && a.undirected = b.undirected

let pp ppf t =
  Fmt.pf ppf "@[<v>pdag (%d nodes):@,%a%a@]" t.n
    Fmt.(list ~sep:cut (fun ppf (u, v) -> Fmt.pf ppf "  %d -> %d" u v))
    (directed_edges t)
    Fmt.(list ~sep:cut (fun ppf (u, v) -> Fmt.pf ppf "  %d -- %d" u v))
    (undirected_edges t)
