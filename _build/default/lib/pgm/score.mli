(** Score-based structure learning: greedy hill-climbing over DAGs with
    the BIC score on discrete data. *)

type data

(** Raises [Invalid_argument] on ragged input. *)
val data_of : cards:int list -> int array list -> data

(** BIC family score of one variable given a parent set. *)
val family_score : data -> int -> int list -> float

val total_score : data -> Dag.t -> float

type move = Add of int * int | Remove of int * int | Reverse of int * int

val apply_move : Dag.t -> move -> Dag.t

(** Greedy hill climbing from the empty graph; [max_parents] bounds
    in-degree. *)
val hill_climb : ?max_parents:int -> ?max_iters:int -> data -> Dag.t
