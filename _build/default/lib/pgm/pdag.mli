(** Partially directed graphs (CPDAG representation). Mutable: clone with
    {!copy} before branching. *)

type t

val create : int -> t
val size : t -> int
val copy : t -> t

val has_directed : t -> int -> int -> bool
val has_undirected : t -> int -> int -> bool
val adjacent : t -> int -> int -> bool

(** Raises [Invalid_argument] on self loops. *)
val add_undirected : t -> int -> int -> unit

(** Remove any edge (directed or not) between two nodes. *)
val remove_edge : t -> int -> int -> unit

(** Turn the edge between [u] and [v] into [u -> v]. *)
val orient : t -> int -> int -> unit

(** Complete undirected graph on [n] nodes (PC's starting point). *)
val complete : int -> t

val neighbors : t -> int -> int list
val undirected_neighbors : t -> int -> int list
val parents : t -> int -> int list
val children : t -> int -> int list
val directed_edges : t -> (int * int) list

(** Each undirected edge once, as [(min, max)]. *)
val undirected_edges : t -> (int * int) list

val fully_directed : t -> bool

(** [Some dag] when fully directed and acyclic. *)
val to_dag : t -> Dag.t option

val of_dag : Dag.t -> t

(** Reachability along directed edges only. *)
val directed_reaches : t -> int -> int -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
