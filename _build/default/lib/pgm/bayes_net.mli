(** Discrete Bayesian networks with explicit CPTs and forward sampling —
    the structural-equation-model substrate of the reproduction. *)

type node = {
  name : string;
  card : int;                  (** domain size *)
  parents : int list;          (** indices of parent nodes *)
  cpt : float array array;     (** parent configuration → distribution *)
}

type t

(** Validates parent ranges, acyclicity and CPT shapes; raises
    [Invalid_argument] otherwise. *)
val create : node list -> t

val node_count : t -> int
val node : t -> int -> node
val name : t -> int -> string
val cardinality : t -> int -> int

(** Mixed-radix parent-configuration index (most significant parent
    first). *)
val config_index : t -> int -> int array -> int

val config_count : t -> int -> int
val to_dag : t -> Dag.t

(** One joint sample (value index per node, in node order). *)
val sample : t -> Stat.Rng.t -> int array

val sample_many : t -> Stat.Rng.t -> int -> int array array

(** CPT of a deterministic function of the parents, flipped to a random
    other value with probability [noise]. *)
val noisy_function_cpt :
  card:int ->
  parent_cards:int list ->
  noise:float ->
  (int list -> int) ->
  float array array

val root_cpt : float array -> float array array
val uniform_cpt : card:int -> parent_cards:int list -> float array array
