(** Counting labelled DAGs (Robinson's recurrence), in floating point. *)

val binomial : int -> int -> float

(** Number of labelled DAGs on [n] nodes. *)
val labelled_dags : int -> float

(** Render like ["2.20e13"]; plain integers below 10⁶. *)
val scientific : float -> string
