(* Directed acyclic graphs over nodes 0 .. n-1.

   The SEM / Bayesian-network view of the data-generating process (paper
   §4.2): every node is an attribute, incoming edges are the generating
   function's arguments. *)

module Int_set = Set.Make (Int)

type t = { n : int; parents : Int_set.t array }

let create n = { n; parents = Array.init n (fun _ -> Int_set.empty) }

let size t = t.n

let parents t v = Int_set.elements t.parents.(v)
let parent_set t v = t.parents.(v)

let children t v =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    if Int_set.mem v t.parents.(u) then acc := u :: !acc
  done;
  !acc

let has_edge t u v = Int_set.mem u t.parents.(v)

let add_edge t u v =
  if u = v then invalid_arg "Dag.add_edge: self loop";
  if u < 0 || v < 0 || u >= t.n || v >= t.n then invalid_arg "Dag.add_edge: out of range";
  let parents = Array.copy t.parents in
  parents.(v) <- Int_set.add u parents.(v);
  { t with parents }

let remove_edge t u v =
  let parents = Array.copy t.parents in
  parents.(v) <- Int_set.remove u parents.(v);
  { t with parents }

let of_edges n edges =
  List.fold_left (fun g (u, v) -> add_edge g u v) (create n) edges

let edges t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    Int_set.iter (fun u -> acc := (u, v) :: !acc) t.parents.(v)
  done;
  !acc

let edge_count t =
  Array.fold_left (fun acc s -> acc + Int_set.cardinal s) 0 t.parents

(* Kahn's algorithm. Returns [None] on a cycle, which doubles as the
   acyclicity check. *)
let topological_sort t =
  let indeg = Array.map Int_set.cardinal t.parents in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr seen;
    List.iter
      (fun c ->
        indeg.(c) <- indeg.(c) - 1;
        if indeg.(c) = 0 then Queue.add c queue)
      (children t v)
  done;
  if !seen = t.n then Some (List.rev !order) else None

let is_acyclic t = topological_sort t <> None

(* Is there a directed path from [u] to [v]? *)
let reaches t u v =
  let visited = Array.make t.n false in
  let rec go x =
    if x = v then true
    else if visited.(x) then false
    else begin
      visited.(x) <- true;
      List.exists go (children t x)
    end
  in
  go u

let equal a b =
  a.n = b.n && Array.for_all2 Int_set.equal a.parents b.parents

let compare a b =
  let c = Int.compare a.n b.n in
  if c <> 0 then c
  else begin
    let rec go i =
      if i >= a.n then 0
      else
        let c = Int_set.compare a.parents.(i) b.parents.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

(* Unordered v-structures u -> v <- w with u, w non-adjacent, as
   (min u w, v, max u w) triples. *)
let v_structures t =
  let adjacent x y = has_edge t x y || has_edge t y x in
  let acc = ref [] in
  for v = 0 to t.n - 1 do
    let ps = parents t v in
    List.iteri
      (fun i u ->
        List.iteri
          (fun j w -> if j > i && not (adjacent u w) then acc := (min u w, v, max u w) :: !acc)
          ps)
      ps
  done;
  List.sort Stdlib.compare !acc

let pp ppf t =
  Fmt.pf ppf "@[<v>digraph (%d nodes):@,%a@]" t.n
    Fmt.(list ~sep:cut (fun ppf (u, v) -> Fmt.pf ppf "  %d -> %d" u v))
    (edges t)
