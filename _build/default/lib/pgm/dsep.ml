(* d-separation via the Bayes-ball / active-path reachability algorithm.

   Used as an exact conditional-independence oracle in tests (PC must
   recover the CPDAG of a known DAG under a d-separation oracle) and to
   validate the GNT theory of paper §4.3. *)

module Int_set = Set.Make (Int)

(* Is every path between x and y blocked by z in g? Standard reachability
   over (node, direction) states: direction is how we arrived at the node
   (along an incoming edge -> Down, along an outgoing edge -> Up). *)
let d_separated g x y z =
  let zset = Int_set.of_list z in
  let n = Dag.size g in
  (* ancestors of z (inclusive), needed for collider activation *)
  let anc_z = Array.make n false in
  let rec mark v =
    if not anc_z.(v) then begin
      anc_z.(v) <- true;
      List.iter mark (Dag.parents g v)
    end
  in
  Int_set.iter mark zset;
  (* BFS over (node, came_from_child) states *)
  let visited_up = Array.make n false in
  let visited_down = Array.make n false in
  let queue = Queue.create () in
  (* start from x travelling in both directions *)
  Queue.add (x, `Up) queue;
  let reached = ref false in
  while not (Queue.is_empty queue) && not !reached do
    let v, dir = Queue.pop queue in
    let seen =
      match dir with `Up -> visited_up.(v) | `Down -> visited_down.(v)
    in
    if not seen then begin
      (match dir with
       | `Up -> visited_up.(v) <- true
       | `Down -> visited_down.(v) <- true);
      if v = y && v <> x then reached := true
      else begin
        let in_z = Int_set.mem v zset in
        match dir with
        | `Up ->
          (* arrived from a child (or start): if not in z, pass to parents
             (still Up) and to children (Down) *)
          if not in_z then begin
            List.iter (fun p -> Queue.add (p, `Up) queue) (Dag.parents g v);
            List.iter (fun c -> Queue.add (c, `Down) queue) (Dag.children g v)
          end
        | `Down ->
          (* arrived from a parent: if not in z, continue to children;
             if v is an (ancestor of an) observed node, bounce to parents
             (collider activation) *)
          if not in_z then
            List.iter (fun c -> Queue.add (c, `Down) queue) (Dag.children g v);
          if anc_z.(v) then
            List.iter (fun p -> Queue.add (p, `Up) queue) (Dag.parents g v)
      end
    end
  done;
  not !reached

(* Exact CI oracle for the PC algorithm. *)
let oracle g = fun i j cond -> d_separated g i j cond
