(* Meek's orientation rules (Meek 1995).

   Given a PDAG whose v-structures are already oriented, repeatedly apply
   R1-R4 until fixpoint. The result is the maximally oriented graph — for
   PC output, the CPDAG of the Markov equivalence class.

     R1: a -> b, b - c, a and c non-adjacent        =>  b -> c
     R2: a -> b -> c, a - c                         =>  a -> c
     R3: a - b, a - c, a - d, c -> b, d -> b,
         c and d non-adjacent                       =>  a -> b
     R4: a - b, a - c, c -> d, d -> b,
         b and d adjacent or a and d adjacent (we
         use the standard form: a - d, c -> d,
         d -> b, a - b, a - c, b and c non-adjacent) => a -> b
*)

let rule1 g =
  let n = Pdag.size g in
  let changed = ref false in
  for b = 0 to n - 1 do
    List.iter
      (fun a ->
        (* a -> b *)
        List.iter
          (fun c ->
            if c <> a && not (Pdag.adjacent g a c) then begin
              Pdag.orient g b c;
              changed := true
            end)
          (Pdag.undirected_neighbors g b))
      (Pdag.parents g b)
  done;
  !changed

let rule2 g =
  let n = Pdag.size g in
  let changed = ref false in
  for a = 0 to n - 1 do
    List.iter
      (fun c ->
        (* a - c; look for a -> b -> c *)
        let exists_chain =
          List.exists (fun b -> Pdag.has_directed g b c) (Pdag.children g a)
        in
        if exists_chain then begin
          Pdag.orient g a c;
          changed := true
        end)
      (Pdag.undirected_neighbors g a)
  done;
  !changed

let rule3 g =
  let n = Pdag.size g in
  let changed = ref false in
  for a = 0 to n - 1 do
    List.iter
      (fun b ->
        (* a - b; look for c, d with a - c, a - d, c -> b, d -> b,
           c and d non-adjacent *)
        let candidates =
          List.filter (fun x -> Pdag.has_directed g x b) (Pdag.undirected_neighbors g a)
        in
        let rec pairs = function
          | [] -> false
          | c :: rest ->
            List.exists (fun d -> not (Pdag.adjacent g c d)) rest || pairs rest
        in
        if pairs candidates then begin
          Pdag.orient g a b;
          changed := true
        end)
      (Pdag.undirected_neighbors g a)
  done;
  !changed

let rule4 g =
  let n = Pdag.size g in
  let changed = ref false in
  for a = 0 to n - 1 do
    List.iter
      (fun b ->
        (* a - b; look for c, d: a - c (or adjacent), c -> d, d -> b, with
           b and c non-adjacent and a adjacent to d *)
        let found =
          List.exists
            (fun d ->
              Pdag.has_directed g d b && Pdag.adjacent g a d
              && List.exists
                   (fun c ->
                     Pdag.has_directed g c d
                     && Pdag.adjacent g a c
                     && not (Pdag.adjacent g b c))
                   (Pdag.parents g d))
            (Pdag.parents g b)
        in
        if found then begin
          Pdag.orient g a b;
          changed := true
        end)
      (Pdag.undirected_neighbors g a)
  done;
  !changed

(* Apply R1-R4 until no rule fires. Mutates [g]. *)
let close g =
  let continue = ref true in
  while !continue do
    let c1 = rule1 g in
    let c2 = rule2 g in
    let c3 = rule3 g in
    let c4 = rule4 g in
    continue := c1 || c2 || c3 || c4
  done;
  g
