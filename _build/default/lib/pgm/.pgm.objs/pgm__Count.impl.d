lib/pgm/count.ml: Float Hashtbl Printf
