lib/pgm/dag.ml: Array Fmt Int List Queue Set Stdlib
