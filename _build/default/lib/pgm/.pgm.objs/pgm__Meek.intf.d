lib/pgm/meek.mli: Pdag
