lib/pgm/meek.ml: List Pdag
