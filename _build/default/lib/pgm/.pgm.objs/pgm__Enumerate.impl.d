lib/pgm/enumerate.ml: List Meek Pdag
