lib/pgm/score.mli: Dag
