lib/pgm/count.mli:
