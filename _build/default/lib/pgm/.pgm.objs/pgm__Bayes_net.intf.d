lib/pgm/bayes_net.mli: Dag Stat
