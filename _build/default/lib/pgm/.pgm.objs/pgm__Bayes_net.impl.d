lib/pgm/bayes_net.ml: Array Dag List Printf Stat
