lib/pgm/dag.mli: Format Int Set
