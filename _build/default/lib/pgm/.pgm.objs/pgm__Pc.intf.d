lib/pgm/pc.mli: Hashtbl Pdag
