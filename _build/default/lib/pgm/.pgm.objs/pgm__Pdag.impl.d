lib/pgm/pdag.ml: Array Dag Fmt List
