lib/pgm/dsep.mli: Dag
