lib/pgm/enumerate.mli: Dag Pdag
