lib/pgm/pdag.mli: Dag Format
