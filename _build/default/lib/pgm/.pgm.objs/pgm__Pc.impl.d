lib/pgm/pc.ml: Hashtbl List Meek Option Pdag
