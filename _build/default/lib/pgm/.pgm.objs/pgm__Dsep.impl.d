lib/pgm/dsep.ml: Array Dag Int List Queue Set
