lib/pgm/score.ml: Array Dag Float Hashtbl Int List
