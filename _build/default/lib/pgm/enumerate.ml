(* Enumerate the DAGs of a Markov equivalence class.

   The paper (Alg. 2) enumerates all DAGs within the MEC learned by
   structure discovery; the authors adapted a Julia PDAG-enumeration
   package for this. We implement consistent-extension enumeration
   directly:

     - pick an undirected edge u - v of the CPDAG;
     - try u -> v and v -> u; an orientation is admissible when it
       (a) creates no directed cycle and (b) creates no *new* v-structure
       (a new collider x -> v <- u with x non-adjacent to u);
     - after each choice, close under Meek's rules, which forces all
       orientations implied by the choice;
     - recurse until no undirected edge remains.

   Meek closure guarantees every emitted DAG has exactly the v-structures
   of the CPDAG, i.e. is a member of the MEC, and that each member is
   produced exactly once (each recursion step splits on the orientation of
   one fixed edge). [max_dags] implements the paper's "maximal enumeration
   of DAGs" cut-off. *)

let creates_new_collider g u v =
  (* would orienting u -> v create a collider x -> v <- u with x
     non-adjacent to u? *)
  List.exists (fun x -> x <> u && not (Pdag.adjacent g x u)) (Pdag.parents g v)

let creates_cycle g u v =
  (* orienting u -> v closes a cycle iff a directed path v ~> u exists *)
  Pdag.directed_reaches g v u

let admissible g u v = not (creates_new_collider g u v) && not (creates_cycle g u v)

exception Limit_reached

(* All consistent DAG extensions, up to [max_dags]. Returns the list and a
   flag saying whether the enumeration was truncated. *)
let consistent_extensions ?(max_dags = 10_000) cpdag =
  let out = ref [] in
  let count = ref 0 in
  let emit g =
    match Pdag.to_dag g with
    | Some dag ->
      out := dag :: !out;
      incr count;
      if !count >= max_dags then raise Limit_reached
    | None -> ()
  in
  let rec go g =
    match Pdag.undirected_edges g with
    | [] -> emit g
    | (u, v) :: _ ->
      List.iter
        (fun (a, b) ->
          if admissible g a b then begin
            let g' = Pdag.copy g in
            Pdag.orient g' a b;
            ignore (Meek.close g');
            go g'
          end)
        [ (u, v); (v, u) ]
  in
  let truncated =
    try
      go (Meek.close (Pdag.copy cpdag));
      false
    with Limit_reached -> true
  in
  (List.rev !out, truncated)

(* Count only (same traversal, no DAG retention). *)
let count_extensions ?max_dags cpdag =
  let dags, truncated = consistent_extensions ?max_dags cpdag in
  (List.length dags, truncated)
