(** CART-style decision tree on categorical features (Gini, equality
    splits). *)

type t

type params = { max_depth : int; min_leaf : int }

val default_params : params

(** Raises [Invalid_argument] on an empty training set; labels coded [-1]
    are skipped. *)
val train :
  ?params:params -> cards:int array -> n_labels:int -> int array array -> int array -> t

val predict : t -> int array -> int
val depth : t -> int
val size : t -> int
