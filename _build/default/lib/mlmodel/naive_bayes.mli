(** Categorical naive Bayes with Laplace smoothing. *)

type t

(** [cards] are feature cardinalities; labels with code [-1] are skipped.
    Raises [Invalid_argument] on an empty training set. *)
val train : cards:int array -> n_labels:int -> int array array -> int array -> t

val log_scores : t -> int array -> float array
val predict : t -> int array -> int
