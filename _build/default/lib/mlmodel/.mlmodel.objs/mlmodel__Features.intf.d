lib/mlmodel/features.mli: Dataframe
