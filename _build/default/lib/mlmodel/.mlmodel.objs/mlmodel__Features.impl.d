lib/mlmodel/features.ml: Array Dataframe Hashtbl List
