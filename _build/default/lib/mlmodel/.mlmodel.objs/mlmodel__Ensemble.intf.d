lib/mlmodel/ensemble.mli: Dataframe Decision_tree
