lib/mlmodel/naive_bayes.mli:
