lib/mlmodel/ensemble.ml: Array Dataframe Decision_tree Features Float List Naive_bayes
