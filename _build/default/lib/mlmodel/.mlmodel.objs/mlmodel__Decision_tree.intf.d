lib/mlmodel/decision_tree.mli:
