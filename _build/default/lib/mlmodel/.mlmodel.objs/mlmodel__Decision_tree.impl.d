lib/mlmodel/decision_tree.ml: Array List
