lib/mlmodel/naive_bayes.ml: Array
