(** Majority-vote ensemble over naive Bayes and two decision trees — the
    repo's stand-in for the paper's AutoML backend. *)

type t

val train : ?tree_params:Decision_tree.params -> Dataframe.Frame.t -> label:string -> t

(** Predict the label of one row (any frame with the same column names;
    the label column, if present, is ignored). *)
val predict_row : t -> Dataframe.Frame.t -> int -> Dataframe.Value.t

val predict_frame : t -> Dataframe.Frame.t -> Dataframe.Value.t array

(** Accuracy against the frame's label column; NaN on empty frames. *)
val accuracy : t -> Dataframe.Frame.t -> label:string -> float
