(* CART-style decision tree on categorical features.

   Splits are equality tests "feature j = value v" chosen by Gini
   impurity reduction; growth stops at [max_depth], [min_leaf] or purity.
   Equality splits keep the tree honest on dictionary-coded data and make
   it sensitive to single-attribute corruptions — exactly the sensitivity
   the guardrail experiments measure. *)

type node =
  | Leaf of int                                   (* label code *)
  | Split of { feature : int; value : int; if_eq : node; if_ne : node }

type t = { root : node; n_labels : int }

type params = { max_depth : int; min_leaf : int }

let default_params = { max_depth = 8; min_leaf = 4 }

let gini hist total =
  if total = 0 then 0.0
  else begin
    let t = float_of_int total in
    let s = ref 0.0 in
    Array.iter
      (fun c ->
        let p = float_of_int c /. t in
        s := !s +. (p *. p))
      hist;
    1.0 -. !s
  end

let majority hist =
  let best = ref 0 in
  Array.iteri (fun y c -> if c > hist.(!best) then best := y) hist;
  !best

let histogram n_labels ys rows =
  let hist = Array.make n_labels 0 in
  List.iter
    (fun i -> if ys.(i) >= 0 then hist.(ys.(i)) <- hist.(ys.(i)) + 1)
    rows;
  hist

let train ?(params = default_params) ~cards ~n_labels xs ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Decision_tree.train: empty training set";
  let d = Array.length cards in
  let rec grow rows depth =
    let hist = histogram n_labels ys rows in
    let total = List.length rows in
    let label = majority hist in
    let impurity = gini hist total in
    if depth >= params.max_depth || total <= params.min_leaf || impurity = 0.0
    then Leaf label
    else begin
      (* best equality split *)
      let best = ref None in
      for j = 0 to d - 1 do
        (* candidate values present in this node *)
        let value_hist = Array.make cards.(j) 0 in
        List.iter
          (fun i ->
            let v = xs.(i).(j) in
            if v >= 0 && v < cards.(j) then value_hist.(v) <- value_hist.(v) + 1)
          rows;
        for v = 0 to cards.(j) - 1 do
          if value_hist.(v) > 0 && value_hist.(v) < total then begin
            let eq_hist = Array.make n_labels 0 in
            let ne_hist = Array.make n_labels 0 in
            List.iter
              (fun i ->
                if ys.(i) >= 0 then begin
                  if xs.(i).(j) = v then eq_hist.(ys.(i)) <- eq_hist.(ys.(i)) + 1
                  else ne_hist.(ys.(i)) <- ne_hist.(ys.(i)) + 1
                end)
              rows;
            let n_eq = Array.fold_left ( + ) 0 eq_hist in
            let n_ne = Array.fold_left ( + ) 0 ne_hist in
            if n_eq >= params.min_leaf / 2 && n_ne >= params.min_leaf / 2 then begin
              let weighted =
                (float_of_int n_eq *. gini eq_hist n_eq
                +. float_of_int n_ne *. gini ne_hist n_ne)
                /. float_of_int (n_eq + n_ne)
              in
              let gain = impurity -. weighted in
              match !best with
              | Some (g, _, _) when g >= gain -> ()
              | _ -> if gain > 1e-9 then best := Some (gain, j, v)
            end
          end
        done
      done;
      match !best with
      | None -> Leaf label
      | Some (_, j, v) ->
        let eq_rows, ne_rows = List.partition (fun i -> xs.(i).(j) = v) rows in
        Split
          {
            feature = j;
            value = v;
            if_eq = grow eq_rows (depth + 1);
            if_ne = grow ne_rows (depth + 1);
          }
    end
  in
  let rows = List.init n (fun i -> i) in
  { root = grow rows 0; n_labels }

let rec eval node x =
  match node with
  | Leaf y -> y
  | Split { feature; value; if_eq; if_ne } ->
    if x.(feature) = value then eval if_eq x else eval if_ne x

let predict t x = eval t.root x

let rec depth_of = function
  | Leaf _ -> 0
  | Split { if_eq; if_ne; _ } -> 1 + max (depth_of if_eq) (depth_of if_ne)

let depth t = depth_of t.root

let rec size_of = function
  | Leaf _ -> 1
  | Split { if_eq; if_ne; _ } -> 1 + size_of if_eq + size_of if_ne

let size t = size_of t.root
