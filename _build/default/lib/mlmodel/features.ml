(* Feature extraction: dataframe rows -> integer feature vectors.

   The encoder is fitted on the training split (dictionary per feature
   column) and maps unseen test-time values to a reserved "unknown" code,
   so models never see out-of-range inputs. *)

module Frame = Dataframe.Frame
module Value = Dataframe.Value

type t = {
  feature_cols : string list;            (* by name: survives re-ordering *)
  label_col : string;
  dicts : (Value.t, int) Hashtbl.t array; (* per feature column *)
  cards : int array;                      (* including the unknown code *)
  label_dict : (Value.t, int) Hashtbl.t;
  label_values : Value.t array;           (* label code -> value *)
}

let unknown_code t j = t.cards.(j) - 1

let fit frame ~label =
  let feature_cols =
    List.filter (fun n -> n <> label) (Frame.names frame)
  in
  let fit_dict name =
    let col = Frame.column_by_name frame name in
    let dict = Hashtbl.create 64 in
    Array.iteri
      (fun code v -> Hashtbl.replace dict v code)
      (Dataframe.Column.dict col);
    dict
  in
  let dicts = Array.of_list (List.map fit_dict feature_cols) in
  let cards =
    Array.of_list
      (List.map
         (fun n ->
           Dataframe.Column.cardinality (Frame.column_by_name frame n) + 1)
         feature_cols)
  in
  let label_col_data = Frame.column_by_name frame label in
  let label_dict = Hashtbl.create 16 in
  Array.iteri
    (fun code v -> Hashtbl.replace label_dict v code)
    (Dataframe.Column.dict label_col_data);
  {
    feature_cols;
    label_col = label;
    dicts;
    cards;
    label_dict;
    label_values = Array.copy (Dataframe.Column.dict label_col_data);
  }

let n_features t = Array.length t.dicts
let n_labels t = Array.length t.label_values
let label_value t code = t.label_values.(code)

let label_code t v = Hashtbl.find_opt t.label_dict v

(* Encode one row of any frame sharing the column names. *)
let encode_row t frame row =
  Array.of_list
    (List.mapi
       (fun j name ->
         let v = Frame.get_by_name frame row name in
         match Hashtbl.find_opt t.dicts.(j) v with
         | Some c -> c
         | None -> unknown_code t j)
       t.feature_cols)

(* Encode a whole frame: feature matrix plus label codes (labels absent
   from the training dictionary map to -1). *)
let encode t frame =
  let n = Frame.nrows frame in
  let xs = Array.init n (fun i -> encode_row t frame i) in
  let ys =
    Array.init n (fun i ->
        match Hashtbl.find_opt t.label_dict (Frame.get_by_name frame i t.label_col) with
        | Some c -> c
        | None -> -1)
  in
  (xs, ys)
