(* Categorical naive Bayes with Laplace smoothing.

   P(y | x) ∝ P(y) * Π_j P(x_j | y); all factors are estimated by smoothed
   counting over integer-coded features. *)

type t = {
  n_labels : int;
  cards : int array;                 (* feature cardinalities *)
  log_prior : float array;
  log_likelihood : float array array array;  (* feature -> value -> label *)
}

let train ~cards ~n_labels xs ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Naive_bayes.train: empty training set";
  let d = Array.length cards in
  let label_counts = Array.make n_labels 0 in
  let counts =
    Array.init d (fun j -> Array.make_matrix cards.(j) n_labels 0)
  in
  for i = 0 to n - 1 do
    let y = ys.(i) in
    if y >= 0 then begin
      label_counts.(y) <- label_counts.(y) + 1;
      Array.iteri (fun j v -> counts.(j).(v).(y) <- counts.(j).(v).(y) + 1) xs.(i)
    end
  done;
  let total = Array.fold_left ( + ) 0 label_counts in
  let log_prior =
    Array.map
      (fun c ->
        log ((float_of_int c +. 1.0) /. (float_of_int total +. float_of_int n_labels)))
      label_counts
  in
  let log_likelihood =
    Array.init d (fun j ->
        Array.init cards.(j) (fun v ->
            Array.init n_labels (fun y ->
                log
                  ((float_of_int counts.(j).(v).(y) +. 1.0)
                  /. (float_of_int label_counts.(y) +. float_of_int cards.(j))))))
  in
  { n_labels; cards; log_prior; log_likelihood }

let log_scores t x =
  Array.init t.n_labels (fun y ->
      let s = ref t.log_prior.(y) in
      Array.iteri
        (fun j v ->
          if v >= 0 && v < t.cards.(j) then
            s := !s +. t.log_likelihood.(j).(v).(y))
        x;
      !s)

let predict t x =
  let scores = log_scores t x in
  let best = ref 0 in
  Array.iteri (fun y s -> if s > scores.(!best) then best := y) scores;
  !best
