(** Abstract syntax of the GUARDRAIL DSL (paper Fig. 2). Attributes are
    column indices into the carried schema. *)

type literal = Dataframe.Value.t

type equality = { attr : int; value : literal }

(** Conjunction of equalities, sorted by attribute, one per attribute. *)
type condition = equality list

type branch = { condition : condition; assignment : literal }

type stmt = {
  given : int list;  (** determinant attributes, sorted *)
  on : int;          (** dependent attribute *)
  branches : branch list;
}

type prog = { schema : Dataframe.Schema.t; stmts : stmt list }

(** Sorts and checks the condition; raises [Invalid_argument] on duplicate
    attributes. *)
val normalize_condition : condition -> condition

val branch : condition:condition -> assignment:literal -> branch

(** Raises [Invalid_argument] on an empty GIVEN set, a dependent attribute
    inside GIVEN, or branch conditions outside GIVEN. *)
val stmt : given:int list -> on:int -> branches:branch list -> stmt

val prog : schema:Dataframe.Schema.t -> stmt list -> prog
val empty : Dataframe.Schema.t -> prog

val stmt_count : prog -> int
val branch_count : prog -> int

(** Attributes constrained by the program (its ON set), sorted. *)
val constrained_attributes : prog -> int list

val equal_literal : literal -> literal -> bool
val equal_branch : branch -> branch -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_prog : prog -> prog -> bool
