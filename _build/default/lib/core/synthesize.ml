(* End-to-end synthesis (paper Fig. 4 workflow + Algorithm 2).

   1. Restrict to categorical attributes.
   2. Draw auxiliary-distribution samples (or raw codes for the identity
      ablation).
   3. Learn the CPDAG of the MEC with the PC algorithm over a chi-square
      CI oracle.
   4. Enumerate the DAGs of the MEC (capped), derive a program sketch from
      each DAG's parent sets, fill it with Algorithm 1, and keep the
      program with the highest coverage (Alg. 2's fitness).

   Statement-level cache: distinct DAGs of one MEC share most parent sets,
   so concretized statements are memoized on (given, on) — the
   implementation optimization described in paper §7. *)

module Frame = Dataframe.Frame

let log_src = Logs.Src.create "guardrail.synthesize" ~doc:"GUARDRAIL synthesis pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type timing = {
  sampling_s : float;
  structure_s : float;
  enumeration_s : float;
  fill_s : float;
}

type result = {
  program : Dsl.prog;
  coverage : float;
  cpdag : Pgm.Pdag.t;
  dag_count : int;
  truncated : bool;
  columns : int list;        (* frame columns the variables map to *)
  cache_hits : int;
  cache_misses : int;
  timing : timing;
}

let total_time t = t.sampling_s +. t.structure_s +. t.enumeration_s +. t.fill_s

let now () = Unix.gettimeofday ()

(* Columns eligible for constraint synthesis: categorical, non-constant,
   and of manageable cardinality relative to the data size. *)
let eligible_columns frame =
  List.filter
    (fun c ->
      let col = Frame.column frame c in
      let k = Dataframe.Column.cardinality col in
      k >= 2 && k <= max 2 (Frame.nrows frame / 2))
    (Frame.categorical_indices frame)

let learn_cpdag ?(config = Config.default) frame cols =
  let samples =
    match config.Config.sampler with
    | Config.Auxiliary ->
      Auxdist.circular_shift ~max_shifts:config.Config.max_shifts
        ~max_samples:config.Config.max_samples frame cols
    | Config.Identity -> Auxdist.identity frame cols
  in
  let oracle =
    Auxdist.ci_oracle ~alpha:config.Config.alpha
      ~max_strata:config.Config.max_strata
      ~min_effect:config.Config.min_effect samples
  in
  let cpdag, _sepsets =
    Pgm.Pc.cpdag ~n:(List.length cols) ~max_cond:config.Config.max_cond oracle
  in
  cpdag

let run ?(config = Config.default) frame =
  let cols = eligible_columns frame in
  let n_vars = List.length cols in
  let var_to_col = Array.of_list cols in
  let t0 = now () in
  let samples =
    match config.Config.sampler with
    | Config.Auxiliary when Frame.nrows frame >= 2 ->
      Auxdist.circular_shift ~max_shifts:config.Config.max_shifts
        ~max_samples:config.Config.max_samples frame cols
    | Config.Auxiliary | Config.Identity -> Auxdist.identity frame cols
  in
  let t1 = now () in
  let oracle =
    Auxdist.ci_oracle ~alpha:config.Config.alpha
      ~max_strata:config.Config.max_strata
      ~min_effect:config.Config.min_effect samples
  in
  let cpdag, dags, truncated, t2, t3 =
    match config.Config.structure with
    | Config.Pc_mec ->
      let cpdag, _ =
        Pgm.Pc.cpdag ~n:n_vars ~max_cond:config.Config.max_cond oracle
      in
      let t2 = now () in
      let dags, truncated =
        Pgm.Enumerate.consistent_extensions ~max_dags:config.Config.max_dags
          cpdag
      in
      Log.debug (fun m ->
          m "MEC: %d DAGs%s over %d variables" (List.length dags)
            (if truncated then " (truncated)" else "")
            n_vars);
      (cpdag, dags, truncated, t2, now ())
    | Config.Hill_climb ->
      (* score-based alternative: a single BIC-optimal-ish DAG, no MEC *)
      let data =
        Pgm.Score.data_of ~cards:samples.Auxdist.cards
          (Array.to_list samples.Auxdist.columns)
      in
      let dag = Pgm.Score.hill_climb data in
      let t2 = now () in
      (Pgm.Pdag.of_dag dag, [ dag ], false, t2, t2)
  in
  (* Algorithm 2 main loop with the statement-level cache. *)
  let cache : (int list * int, Fill.filled option) Hashtbl.t =
    Hashtbl.create 64
  in
  let hits = ref 0 and misses = ref 0 in
  let fill_cached (sk : Sketch.stmt_sketch) =
    let key = (sk.Sketch.given, sk.Sketch.on) in
    match Hashtbl.find_opt cache key with
    | Some r ->
      incr hits;
      r
    | None ->
      incr misses;
      let r =
        Fill.fill_stmt_sketch ~min_support:config.Config.min_support frame
          ~epsilon:config.Config.epsilon sk
      in
      Hashtbl.add cache key r;
      r
  in
  let best = ref (Dsl.empty (Frame.schema frame), -1.0) in
  List.iter
    (fun dag ->
      let sketch = Sketch.of_dag ~var_to_col:(fun i -> var_to_col.(i)) dag in
      let filled = List.filter_map fill_cached sketch in
      let stmts = List.map (fun f -> f.Fill.stmt) filled in
      let coverage =
        match filled with
        | [] -> 0.0
        | fs ->
          List.fold_left (fun acc f -> acc +. f.Fill.coverage) 0.0 fs
          /. float_of_int (List.length fs)
      in
      if coverage > snd !best then
        best := (Dsl.prog ~schema:(Frame.schema frame) stmts, coverage))
    dags;
  let t4 = now () in
  let program, coverage = !best in
  let coverage = Float.max coverage 0.0 in
  Log.info (fun m ->
      m "synthesized %d statements, coverage %.3f (%d cache hits / %d misses)"
        (Dsl.stmt_count program) coverage !hits !misses);
  {
    program;
    coverage;
    cpdag;
    dag_count = List.length dags;
    truncated;
    columns = cols;
    cache_hits = !hits;
    cache_misses = !misses;
    timing =
      {
        sampling_s = t1 -. t0;
        structure_s = t2 -. t1;
        enumeration_s = t3 -. t2;
        fill_s = t4 -. t3;
      };
  }
