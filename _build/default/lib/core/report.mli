(** Program quality report: per-statement coverage / loss / ε-validity. *)

type stmt_report = {
  stmt : Dsl.stmt;
  branches : int;
  coverage : float;
  loss : int;
  support : int;
  epsilon_valid : bool;
}

type t = {
  program : Dsl.prog;
  epsilon : float;
  rows : int;
  statements : stmt_report list;
  program_coverage : float;
  program_loss : int;
}

val of_program : epsilon:float -> Dsl.prog -> Dataframe.Frame.t -> t

(** Loss as a fraction of statement support. *)
val loss_rate : stmt_report -> float

val pp : Format.formatter -> t -> unit
