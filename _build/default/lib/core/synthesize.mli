(** End-to-end synthesis (paper Fig. 4 + Algorithm 2). *)

type timing = {
  sampling_s : float;
  structure_s : float;
  enumeration_s : float;
  fill_s : float;
}

type result = {
  program : Dsl.prog;
  coverage : float;          (** Alg. 2 fitness of the returned program *)
  cpdag : Pgm.Pdag.t;        (** learned MEC representation *)
  dag_count : int;           (** DAGs enumerated within the MEC *)
  truncated : bool;          (** enumeration hit the [max_dags] cap *)
  columns : int list;        (** frame columns the CPDAG variables map to *)
  cache_hits : int;
  cache_misses : int;
  timing : timing;
}

val total_time : timing -> float

(** Categorical, non-constant columns of tractable cardinality. *)
val eligible_columns : Dataframe.Frame.t -> int list

(** Structure-learning phase only (used by ablations). *)
val learn_cpdag :
  ?config:Config.t -> Dataframe.Frame.t -> int list -> Pgm.Pdag.t

(** Full pipeline with the defaults of {!Config.default}. *)
val run : ?config:Config.t -> Dataframe.Frame.t -> result
