(* Tuning knobs of the synthesis pipeline, with the defaults used across
   the evaluation. The paper recommends epsilon in [0.01, 0.05] (§8.3). *)

type sampler =
  | Auxiliary  (* circular-shift samples of the binary indicator vector, §4.6 *)
  | Identity   (* learn directly on the raw codes (ablation, Table 8) *)

type structure =
  | Pc_mec      (* the paper's pipeline: PC -> CPDAG -> MEC enumeration *)
  | Hill_climb  (* score-based search returning a single DAG (ablation) *)

type t = {
  epsilon : float;        (* branch-level noise tolerance, Eqn. 3 *)
  alpha : float;          (* CI-test significance level for sketch learning *)
  max_cond : int;         (* PC conditioning-set bound *)
  max_dags : int;         (* MEC enumeration cut-off (Alg. 2) *)
  max_shifts : int;       (* circular shifts drawn by the auxiliary sampler *)
  max_samples : int;      (* cap on auxiliary sample count *)
  min_support : int;      (* rows a branch condition must cover to be kept *)
  min_effect : float;     (* Cramér's-V floor for CI tests (large-sample guard) *)
  sampler : sampler;
  structure : structure;  (* sketch-learning strategy *)
  max_strata : int;       (* CI-test stratum cap (identity sampler suffers here) *)
}

let default =
  {
    epsilon = 0.05;
    alpha = 0.01;
    max_cond = 2;
    max_dags = 512;
    max_shifts = 11;
    max_samples = 120_000;
    min_support = 2;
    min_effect = 0.02;
    sampler = Auxiliary;
    structure = Pc_mec;
    max_strata = 4096;
  }

let with_epsilon epsilon t = { t with epsilon }
let with_sampler sampler t = { t with sampler }
let with_structure structure t = { t with structure }

let pp ppf t =
  Fmt.pf ppf
    "{epsilon=%.3f; alpha=%.3f; max_cond=%d; max_dags=%d; sampler=%s}"
    t.epsilon t.alpha t.max_cond t.max_dags
    (match t.sampler with Auxiliary -> "auxiliary" | Identity -> "identity")
