(* Program quality report: the per-statement coverage / loss / validity
   summary a user inspects before trusting synthesized constraints on
   production data. Used by the CLI's `inspect` command and the bench
   harness. *)

module Frame = Dataframe.Frame

type stmt_report = {
  stmt : Dsl.stmt;
  branches : int;
  coverage : float;
  loss : int;
  support : int;
  epsilon_valid : bool;
}

type t = {
  program : Dsl.prog;
  epsilon : float;
  rows : int;
  statements : stmt_report list;
  program_coverage : float;
  program_loss : int;
}

let of_program ~epsilon program frame =
  let statements =
    List.map
      (fun (s : Dsl.stmt) ->
        let loss, support =
          List.fold_left
            (fun (l, n) b ->
              let l', n' = Semantics.branch_loss frame s b in
              (l + l', n + n'))
            (0, 0) s.Dsl.branches
        in
        {
          stmt = s;
          branches = List.length s.Dsl.branches;
          coverage = Semantics.stmt_coverage frame s;
          loss;
          support;
          epsilon_valid = Semantics.stmt_epsilon_valid frame s ~epsilon;
        })
      program.Dsl.stmts
  in
  {
    program;
    epsilon;
    rows = Frame.nrows frame;
    statements;
    program_coverage = Semantics.prog_coverage frame program;
    program_loss = Semantics.prog_loss frame program;
  }

let loss_rate r =
  if r.support = 0 then 0.0 else float_of_int r.loss /. float_of_int r.support

let pp ppf t =
  let schema = t.program.Dsl.schema in
  Fmt.pf ppf "@[<v>program: %d statements over %d rows (epsilon = %.3f)@,"
    (List.length t.statements) t.rows t.epsilon;
  Fmt.pf ppf "coverage %.3f, total loss %d@," t.program_coverage t.program_loss;
  List.iter
    (fun r ->
      Fmt.pf ppf "  %a: %d branches, coverage %.3f, loss %d/%d (%.2f%%)%s@,"
        (Pretty.pp_stmt_summary schema) r.stmt r.branches r.coverage r.loss
        r.support
        (100.0 *. loss_rate r)
        (if r.epsilon_valid then "" else "  [NOT epsilon-valid]"))
    t.statements;
  Fmt.pf ppf "@]"
