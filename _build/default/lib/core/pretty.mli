(** Concrete syntax printer for the DSL; round-trips with {!Parse}. *)

val pp_literal : Format.formatter -> Dsl.literal -> unit
val pp_equality : Dataframe.Schema.t -> Format.formatter -> Dsl.equality -> unit
val pp_condition : Dataframe.Schema.t -> Format.formatter -> Dsl.condition -> unit

(** The [int] is the statement's ON attribute. *)
val pp_branch : Dataframe.Schema.t -> int -> Format.formatter -> Dsl.branch -> unit

val pp_stmt : Dataframe.Schema.t -> Format.formatter -> Dsl.stmt -> unit
val pp_prog : Format.formatter -> Dsl.prog -> unit
val prog_to_string : Dsl.prog -> string

val pp_stmt_summary : Dataframe.Schema.t -> Format.formatter -> Dsl.stmt -> unit
val pp_prog_summary : Format.formatter -> Dsl.prog -> unit
