(** Parser for the DSL surface syntax; inverse of {!Pretty}. *)

exception Error of { pos : int; message : string }

(** Parse a program, resolving attribute names against the schema. Raises
    {!Error} on syntax or resolution failure. *)
val prog : Dataframe.Schema.t -> string -> Dsl.prog
