(* Translate synthesized constraints to standard SQL (paper §9 notes the
   DSL "can be easily translated into standard SQL queries"). Two forms:

   - a violation query per statement: SELECT the rows breaking any branch;
   - a rectification expression per statement: a CASE WHEN that computes
     the repaired dependent value, usable in an UPDATE or a SELECT. *)

open Dsl

module Value = Dataframe.Value
module Schema = Dataframe.Schema

let quote_ident name =
  let buf = Buffer.create (String.length name + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    name;
  Buffer.add_char buf '"';
  Buffer.contents buf

let sql_literal (v : Value.t) =
  match v with
  | Value.Null -> "NULL"
  | Value.Bool b -> if b then "TRUE" else "FALSE"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.12g" f
  | Value.String s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf

let equality_sql schema { attr; value } =
  match value with
  | Value.Null -> Printf.sprintf "%s IS NULL" (quote_ident (Schema.name schema attr))
  | _ ->
    Printf.sprintf "%s = %s"
      (quote_ident (Schema.name schema attr))
      (sql_literal value)

let condition_sql schema (c : condition) =
  String.concat " AND " (List.map (equality_sql schema) c)

(* Predicate matching rows that violate one branch. *)
let branch_violation_sql schema on (b : branch) =
  let dep = quote_ident (Schema.name schema on) in
  Printf.sprintf "(%s AND (%s IS NULL OR %s <> %s))"
    (condition_sql schema b.condition)
    dep dep (sql_literal b.assignment)

(* SELECT returning the rows of [table] violating the statement. *)
let stmt_violation_query schema ~table (s : stmt) =
  Printf.sprintf "SELECT * FROM %s WHERE %s;" (quote_ident table)
    (String.concat "\n   OR " (List.map (branch_violation_sql schema s.on) s.branches))

(* CASE expression computing the rectified dependent value. *)
let stmt_rectify_case schema (s : stmt) =
  let dep = quote_ident (Schema.name schema s.on) in
  let whens =
    List.map
      (fun (b : branch) ->
        Printf.sprintf "WHEN %s THEN %s"
          (condition_sql schema b.condition)
          (sql_literal b.assignment))
      s.branches
  in
  Printf.sprintf "CASE %s ELSE %s END" (String.concat " " whens) dep

(* UPDATE applying the rectify strategy for one statement. *)
let stmt_rectify_update schema ~table (s : stmt) =
  Printf.sprintf "UPDATE %s SET %s = %s;" (quote_ident table)
    (quote_ident (Schema.name schema s.on))
    (stmt_rectify_case schema s)

let prog_violation_queries ~table (p : prog) =
  List.map (stmt_violation_query p.schema ~table) p.stmts

let prog_rectify_updates ~table (p : prog) =
  List.map (stmt_rectify_update p.schema ~table) p.stmts
