(** Translate synthesized constraints to standard SQL. *)

val quote_ident : string -> string
val sql_literal : Dataframe.Value.t -> string
val condition_sql : Dataframe.Schema.t -> Dsl.condition -> string

(** SELECT returning the rows of [table] violating the statement. *)
val stmt_violation_query :
  Dataframe.Schema.t -> table:string -> Dsl.stmt -> string

(** CASE expression computing the rectified dependent value. *)
val stmt_rectify_case : Dataframe.Schema.t -> Dsl.stmt -> string

(** UPDATE applying the rectify strategy for one statement. *)
val stmt_rectify_update :
  Dataframe.Schema.t -> table:string -> Dsl.stmt -> string

val prog_violation_queries : table:string -> Dsl.prog -> string list
val prog_rectify_updates : table:string -> Dsl.prog -> string list
