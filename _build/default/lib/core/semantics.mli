(** Denotational semantics, loss, ε-validity and coverage (paper §2.2). *)

val condition_holds : Dataframe.Frame.t -> int -> Dsl.condition -> bool
val condition_holds_values : Dataframe.Value.t array -> Dsl.condition -> bool

(** [[b]]_t on a materialized row; the extra argument is the statement's ON
    attribute. Returns the (possibly copied) updated row. *)
val eval_branch : Dataframe.Value.t array -> Dsl.branch -> int -> Dataframe.Value.t array

val eval_stmt : Dataframe.Value.t array -> Dsl.stmt -> Dataframe.Value.t array
val eval_prog : Dsl.prog -> Dataframe.Value.t array -> Dataframe.Value.t array

(** Row indices satisfying the branch condition. *)
val branch_support : Dataframe.Frame.t -> Dsl.branch -> int list

(** [(loss, support)] per Eqn. 2. *)
val branch_loss : Dataframe.Frame.t -> Dsl.stmt -> Dsl.branch -> int * int

val branch_epsilon_valid :
  Dataframe.Frame.t -> Dsl.stmt -> Dsl.branch -> epsilon:float -> bool

val stmt_epsilon_valid : Dataframe.Frame.t -> Dsl.stmt -> epsilon:float -> bool
val prog_epsilon_valid : Dataframe.Frame.t -> Dsl.prog -> epsilon:float -> bool

val branch_coverage : Dataframe.Frame.t -> Dsl.branch -> float
val stmt_coverage : Dataframe.Frame.t -> Dsl.stmt -> float

(** Average statement coverage; 0 for the empty program. *)
val prog_coverage : Dataframe.Frame.t -> Dsl.prog -> float

val stmt_loss : Dataframe.Frame.t -> Dsl.stmt -> int
val prog_loss : Dataframe.Frame.t -> Dsl.prog -> int
