(* Concrete syntax for programs, statements and branches:

     GIVEN city, state ON country HAVING
       IF city = "Berkeley" AND state = "CA" THEN country <- "USA";
       IF city = "Lyon" AND state = "ARA" THEN country <- "France";

   The printer and Parse.prog round-trip. *)

open Dsl

module Value = Dataframe.Value
module Schema = Dataframe.Schema

let pp_literal ppf (v : Value.t) =
  match v with
  | Value.Null -> Fmt.string ppf "NULL"
  | Value.Bool b -> Fmt.string ppf (string_of_bool b)
  | Value.Int i -> Fmt.int ppf i
  | Value.Float f -> Fmt.pf ppf "%.12g" f
  | Value.String s -> Fmt.pf ppf "%S" s

let pp_equality schema ppf { attr; value } =
  Fmt.pf ppf "%s = %a" (Schema.name schema attr) pp_literal value

let pp_condition schema ppf (c : condition) =
  Fmt.(list ~sep:(any " AND ") (pp_equality schema)) ppf c

let pp_branch schema on ppf (b : branch) =
  Fmt.pf ppf "IF %a THEN %s <- %a" (pp_condition schema) b.condition
    (Schema.name schema on) pp_literal b.assignment

let pp_stmt schema ppf (s : stmt) =
  Fmt.pf ppf "@[<v 2>GIVEN %a ON %s HAVING@,%a;@]"
    Fmt.(list ~sep:(any ", ") string)
    (List.map (Schema.name schema) s.given)
    (Schema.name schema s.on)
    Fmt.(list ~sep:(any ";@,") (pp_branch schema s.on))
    s.branches

let pp_prog ppf (p : prog) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,@,") (pp_stmt p.schema)) p.stmts

let prog_to_string p = Fmt.str "%a" pp_prog p

(* One-line summary used in logs and CLI output. *)
let pp_stmt_summary schema ppf (s : stmt) =
  Fmt.pf ppf "GIVEN %a ON %s (%d branches)"
    Fmt.(list ~sep:(any ", ") string)
    (List.map (Schema.name schema) s.given)
    (Schema.name schema s.on)
    (List.length s.branches)

let pp_prog_summary ppf (p : prog) =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut (pp_stmt_summary p.schema))
    p.stmts
