(** Sketch language (paper Fig. 3) and the LNT/GNT criteria of §4.1. *)

type stmt_sketch = { given : int list; on : int }
type prog_sketch = stmt_sketch list

(** Raises [Invalid_argument] on an empty GIVEN or on ∈ GIVEN. *)
val stmt_sketch : given:int list -> on:int -> stmt_sketch

(** [GIVEN Pa(v) ON v] for every node with parents; [var_to_col] maps DAG
    node indices to column indices (identity by default). *)
val of_dag : ?var_to_col:(int -> int) -> Pgm.Dag.t -> prog_sketch

(** Dense composite coding of a column set: observed value combinations map
    to [0 .. k-1]. Returns codes and [k]. *)
val composite_codes : Dataframe.Frame.t -> int list -> int array * int

(** Local non-triviality (Def. 4.1) via a chi-square dependence test. *)
val locally_non_trivial :
  ?alpha:float -> Dataframe.Frame.t -> stmt_sketch -> bool

(** Pairs [(s, s')] where s becomes independent of its determinants when
    conditioning on s''s determinant set — GNT violations (Def. 4.2). *)
val gnt_violations :
  ?alpha:float ->
  ?max_strata:int ->
  Dataframe.Frame.t ->
  prog_sketch ->
  (stmt_sketch * stmt_sketch) list

val globally_non_trivial :
  ?alpha:float -> ?max_strata:int -> Dataframe.Frame.t -> prog_sketch -> bool

val pp_stmt_sketch :
  Dataframe.Schema.t -> Format.formatter -> stmt_sketch -> unit
