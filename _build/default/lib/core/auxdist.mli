(** Auxiliary binary distribution (paper Def. 4.5) and its circular-shift
    sampler (§4.6). *)

type samples = {
  columns : int array array;  (** one 0/1 array per attribute *)
  cards : int list;           (** per-attribute cardinalities *)
  n_samples : int;
  design_scale : float;       (** rows / samples: non-iid deflation factor *)
}

(** Binary indicator samples over the given columns; raises
    [Invalid_argument] on frames with fewer than two rows. *)
val circular_shift :
  ?max_shifts:int -> ?max_samples:int -> Dataframe.Frame.t -> int list -> samples

(** Raw dictionary codes (the Table 8 ablation baseline). *)
val identity : Dataframe.Frame.t -> int list -> samples

(** Conditional-independence oracle over the samples, for {!Pgm.Pc}. *)
val ci_oracle :
  ?alpha:float ->
  ?max_strata:int ->
  ?min_effect:float ->
  samples ->
  int ->
  int ->
  int list ->
  bool
