lib/core/fill.ml: Array Dataframe Dsl Hashtbl List Sketch
