lib/core/sql_export.mli: Dataframe Dsl
