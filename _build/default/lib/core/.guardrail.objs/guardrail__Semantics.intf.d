lib/core/semantics.mli: Dataframe Dsl
