lib/core/synthesize.ml: Array Auxdist Config Dataframe Dsl Fill Float Hashtbl List Logs Pgm Sketch Unix
