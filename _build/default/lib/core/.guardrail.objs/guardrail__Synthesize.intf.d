lib/core/synthesize.mli: Config Dataframe Dsl Pgm
