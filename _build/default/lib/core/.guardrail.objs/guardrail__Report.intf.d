lib/core/report.mli: Dataframe Dsl Format
