lib/core/report.ml: Dataframe Dsl Fmt List Pretty Semantics
