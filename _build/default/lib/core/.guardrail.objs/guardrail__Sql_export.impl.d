lib/core/sql_export.ml: Buffer Dataframe Dsl List Printf String
