lib/core/parse.ml: Buffer Dataframe Dsl List Printf String
