lib/core/fill.mli: Dataframe Dsl Sketch
