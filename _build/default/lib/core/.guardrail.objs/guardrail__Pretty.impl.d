lib/core/pretty.ml: Dataframe Dsl Fmt List
