lib/core/auxdist.ml: Array Dataframe List Stat
