lib/core/dsl.ml: Dataframe Int List
