lib/core/pretty.mli: Dataframe Dsl Format
