lib/core/validator.ml: Array Dataframe Dsl Fmt Hashtbl List Pretty
