lib/core/auxdist.mli: Dataframe
