lib/core/validator.mli: Dataframe Dsl
