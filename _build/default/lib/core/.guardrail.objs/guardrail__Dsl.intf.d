lib/core/dsl.mli: Dataframe
