lib/core/parse.mli: Dataframe Dsl
