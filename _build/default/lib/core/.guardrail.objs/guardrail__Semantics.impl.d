lib/core/semantics.ml: Array Dataframe Dsl List
