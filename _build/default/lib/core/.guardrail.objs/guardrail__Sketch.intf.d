lib/core/sketch.mli: Dataframe Format Pgm
