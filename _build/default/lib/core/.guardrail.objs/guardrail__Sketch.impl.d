lib/core/sketch.ml: Array Dataframe Fmt Hashtbl Int List Pgm Stat
