lib/dataframe/schema.mli: Format
