lib/dataframe/split.mli: Frame
