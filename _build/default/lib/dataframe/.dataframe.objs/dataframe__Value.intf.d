lib/dataframe/value.mli: Format
