lib/dataframe/csv.mli: Frame
