lib/dataframe/frame.ml: Array Column Fmt List Schema Value
