lib/dataframe/frame.mli: Column Format Schema Value
