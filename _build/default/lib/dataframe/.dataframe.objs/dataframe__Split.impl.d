lib/dataframe/split.ml: Array Float Frame Random
