lib/dataframe/column.ml: Array Hashtbl List Value
