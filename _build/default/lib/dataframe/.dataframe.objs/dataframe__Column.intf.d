lib/dataframe/column.mli: Value
