lib/dataframe/schema.ml: Array Fmt Hashtbl Printf
