lib/dataframe/csv.ml: Array Buffer Frame Hashtbl List Printf Schema String Value
