(* Deterministic shuffling and train/test splitting.

   The evaluation protocol (paper §8.2, after [10]) synthesizes constraints
   on a clean training split and detects errors on a corrupted test split,
   so splits must be reproducible across the whole benchmark harness. *)

let permutation ~seed n =
  let st = Random.State.make [| seed; 0x5eed |] in
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let shuffle ~seed df = Frame.take df (permutation ~seed (Frame.nrows df))

(* [train_test ~seed ~train_fraction df] returns [(train, test)]. The frame
   is shuffled first; fractions are clamped to keep at least one row on each
   side when possible. *)
let train_test ~seed ~train_fraction df =
  let n = Frame.nrows df in
  let perm = permutation ~seed n in
  let k =
    let raw = int_of_float (Float.of_int n *. train_fraction) in
    if n <= 1 then raw else max 1 (min (n - 1) raw)
  in
  let train_idx = Array.sub perm 0 k in
  let test_idx = Array.sub perm k (n - k) in
  (Frame.take df train_idx, Frame.take df test_idx)

(* Random sample of [k] distinct row indices. *)
let sample_indices ~seed n k =
  let perm = permutation ~seed n in
  Array.sub perm 0 (min k n)
