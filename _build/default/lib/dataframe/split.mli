(** Deterministic shuffling and train/test splitting. *)

(** Seeded Fisher–Yates permutation of [0 .. n-1]. *)
val permutation : seed:int -> int -> int array

val shuffle : seed:int -> Frame.t -> Frame.t

(** [(train, test)]; shuffles first, keeps at least one row per side when
    the frame has two or more rows. *)
val train_test :
  seed:int -> train_fraction:float -> Frame.t -> Frame.t * Frame.t

(** [k] distinct row indices out of [n], seeded. *)
val sample_indices : seed:int -> int -> int -> int array
