(* Cell values for relational data.

   GUARDRAIL's DSL literals range over strings, numbers and booleans
   (Fig. 2 of the paper); relational data additionally needs an explicit
   null. We keep a single closed variant so columns can be heterogeneous
   at parse time and dictionary-encoded afterwards. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

let null = Null
let bool b = Bool b
let int i = Int i
let float f = Float f
let string s = String s

let is_null = function Null -> true | Bool _ | Int _ | Float _ | String _ -> false

(* Total order: Null < Bool < Int/Float (numeric, compared by value) < String.
   Int and Float compare numerically so that [Int 1] = [Float 1.0]; this is
   what SQL comparison semantics and dictionary encoding both want. *)
let compare a b =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ | Float _ -> 2
    | String _ -> 3
  in
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | String _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> if b then 1 else 2
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s

let to_string = function
  | Null -> ""
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else string_of_float f
  | String s -> s

let pp ppf v =
  match v with
  | Null -> Fmt.string ppf "NULL"
  | String s -> Fmt.pf ppf "%S" s
  | Bool _ | Int _ | Float _ -> Fmt.string ppf (to_string v)

(* Parse a raw CSV field with mild type sniffing. The empty string and the
   conventional NA spellings become [Null]. *)
let of_raw s =
  match s with
  | "" | "NA" | "N/A" | "NaN" | "nan" | "null" | "NULL" -> Null
  | "true" | "True" | "TRUE" -> Bool true
  | "false" | "False" | "FALSE" -> Bool false
  | _ ->
    (match int_of_string_opt s with
     | Some i -> Int i
     | None ->
       (match float_of_string_opt s with
        | Some f -> Float f
        | None -> String s))

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Null | String _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | Bool b -> Some (if b then 1 else 0)
  | Null | Float _ | String _ -> None
