(** Dictionary-encoded column.

    Every distinct value gets a small integer code; cells are stored as a
    code array so statistical hot loops stay allocation-free. *)

type t

val of_values : Value.t array -> t
val of_list : Value.t list -> t

val length : t -> int

(** Number of distinct values ever inserted (codes range over
    [0 .. cardinality - 1]). *)
val cardinality : t -> int

val code : t -> int -> int
val value_of_code : t -> int -> Value.t
val get : t -> int -> Value.t

(** The underlying code array. Do not mutate. *)
val codes : t -> int array

(** The code-to-value dictionary. Do not mutate. *)
val dict : t -> Value.t array

val code_of_value : t -> Value.t -> int option
val to_values : t -> Value.t array

(** Functional single-cell update. *)
val set : t -> int -> Value.t -> t

val update : t -> (int * Value.t) list -> t

(** Keep rows whose index satisfies the predicate. *)
val select : t -> (int -> bool) -> t

(** Gather rows by index (duplicates allowed). *)
val take : t -> int array -> t

val append : t -> t -> t

(** Occurrence count per code. *)
val counts : t -> int array

(** Most frequent value, or [None] on an empty column. *)
val mode : t -> Value.t option
