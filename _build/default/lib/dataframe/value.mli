(** Cell values for relational data.

    A single closed variant covering nulls, booleans, integers, floats and
    strings. Integers and floats compare numerically, so [Int 1] and
    [Float 1.0] are equal under {!equal}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

val null : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val string : string -> t

val is_null : t -> bool

(** Total order: [Null < Bool < numeric < String]; numerics compare by
    value across [Int]/[Float]. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Consistent with {!equal}: equal values hash equally (ints hash as their
    float image). *)
val hash : t -> int

(** Round-trippable textual form; [Null] prints as the empty string. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Parse a raw CSV field with type sniffing. Empty string and common NA
    spellings parse to [Null]. *)
val of_raw : string -> t

val to_float : t -> float option
val to_int : t -> int option
