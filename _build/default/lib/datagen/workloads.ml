(* The ML-integrated SQL workload: four queries per dataset, 48 in total
   (paper §8.2). The shapes mirror the paper's examples — label-rate
   aggregation with CASE WHEN, grouped prediction averages, filtered
   counts — parameterized by each dataset's own attributes and values. *)

module Frame = Dataframe.Frame
module Value = Dataframe.Value

type query = { id : string; sql : string }

let sq s = "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"

(* Most frequent value of a column, as a SQL string literal. *)
let modal_literal frame col_name =
  let col = Frame.column_by_name frame col_name in
  match Dataframe.Column.mode col with
  | Some v -> sq (Value.to_string v)
  | None -> "''"

(* Pick grouping/filter attributes. Following the paper's query shapes,
   errors should reach the result through the *model*, so we prefer
   unconstrained low-cardinality attributes (grouping by a constrained
   attribute would make the result move when the guardrail rewrites the
   group key itself). *)
let pick_attrs (b : Netlib.built) frame =
  let label = b.Netlib.spec.Spec.label in
  let card name = Dataframe.Column.cardinality (Frame.column_by_name frame name) in
  let constrained_names =
    List.map (fun i -> b.Netlib.names.(i)) b.Netlib.constrained
  in
  let all_non_label = List.filter (fun n -> n <> label) (Frame.names frame) in
  let free_low_card =
    List.filter
      (fun n -> (not (List.mem n constrained_names)) && card n <= 8)
      all_non_label
  in
  let any_low_card = List.filter (fun n -> card n <= 8) all_non_label in
  let pool =
    match free_low_card with
    | _ :: _ -> free_low_card
    | [] -> (match any_low_card with _ :: _ -> any_low_card | [] -> all_non_label)
  in
  let attr_a = List.hd pool in
  let attr_b =
    match List.filter (fun n -> n <> attr_a) pool with
    | b :: _ -> b
    | [] ->
      (match List.filter (fun n -> n <> attr_a) all_non_label with
       | b :: _ -> b
       | [] -> attr_a)
  in
  (attr_a, attr_b)

(* Four queries for one dataset, derived from its generated frame. *)
let for_dataset (b : Netlib.built) frame =
  let label = b.Netlib.spec.Spec.label in
  let positive = sq (List.nth b.Netlib.spec.Spec.label_values
                       (List.length b.Netlib.spec.Spec.label_values - 1)) in
  let attr_a, attr_b = pick_attrs b frame in
  let val_a = modal_literal frame attr_a in
  let val_b = modal_literal frame attr_b in
  let ds = b.Netlib.spec.Spec.id in
  [
    { id = Printf.sprintf "q%d_1" ds;
      sql =
        Printf.sprintf
          "SELECT PREDICT(%s) AS pred, COUNT(*) AS n FROM t GROUP BY PREDICT(%s);"
          label label };
    { id = Printf.sprintf "q%d_2" ds;
      sql =
        Printf.sprintf
          "SELECT AVG(CASE WHEN PREDICT(%s) = %s THEN 1 ELSE 0 END) AS rate \
           FROM t WHERE %s = %s;"
          label positive attr_a val_a };
    { id = Printf.sprintf "q%d_3" ds;
      sql =
        Printf.sprintf
          "SELECT %s, AVG(CASE WHEN PREDICT(%s) = %s THEN 1 ELSE 0 END) AS rate \
           FROM t GROUP BY %s;"
          attr_a label positive attr_a };
    { id = Printf.sprintf "q%d_4" ds;
      sql =
        Printf.sprintf
          "SELECT COUNT(*) AS n FROM t WHERE PREDICT(%s) = %s AND %s = %s;"
          label positive attr_b val_b };
  ]
