(** Materialize datasets by forward-sampling their ground-truth
    networks. *)

(** Value rendering: label values use the spec's vocabulary, other nodes
    print as ["v<i>"]. *)
val render : Netlib.built -> int -> int -> Dataframe.Value.t

val frame_of_samples : Netlib.built -> int array array -> Dataframe.Frame.t

(** Sample the spec's row count (override with [n_rows]); deterministic in
    the spec seed plus [seed_offset]. *)
val dataset :
  ?n_rows:int -> ?seed_offset:int -> Spec.t -> Netlib.built * Dataframe.Frame.t

(** Capped-size replica for unit tests. *)
val small_dataset : ?n_rows:int -> Spec.t -> Netlib.built * Dataframe.Frame.t
