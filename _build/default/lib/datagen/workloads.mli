(** The ML-integrated SQL workload: four queries per dataset (48 total,
    paper §8.2). *)

type query = { id : string; sql : string }

(** Four queries for one dataset, parameterized by its generated frame. *)
val for_dataset : Netlib.built -> Dataframe.Frame.t -> query list
