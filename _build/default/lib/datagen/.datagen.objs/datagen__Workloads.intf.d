lib/datagen/workloads.mli: Dataframe Netlib
