lib/datagen/netlib.mli: Pgm Spec
