lib/datagen/generate.ml: Array Dataframe List Netlib Option Pgm Printf Spec Stat
