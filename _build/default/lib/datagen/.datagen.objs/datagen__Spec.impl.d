lib/datagen/spec.ml: Fmt List Printf
