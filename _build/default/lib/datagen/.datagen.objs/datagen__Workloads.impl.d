lib/datagen/workloads.ml: Array Dataframe List Netlib Printf Spec String
