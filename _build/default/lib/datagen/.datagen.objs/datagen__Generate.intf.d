lib/datagen/generate.mli: Dataframe Netlib Spec
