lib/datagen/netlib.ml: Array List Pgm Printf Spec Stat
