lib/datagen/corrupt.ml: Array Dataframe List Netlib Option Spec Stat
