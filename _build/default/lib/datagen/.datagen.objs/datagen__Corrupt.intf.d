lib/datagen/corrupt.mli: Dataframe Netlib
