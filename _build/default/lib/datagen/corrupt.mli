(** Error injection with ground-truth masks (paper §8 setup). *)

type injection = {
  corrupted : Dataframe.Frame.t;
  mask : bool array;          (** per-row: was an error injected? *)
  cells : (int * int) list;   (** (row, column) of each injected error *)
}

(** The paper's rule: 1% of rows, slightly higher for small datasets,
    capped at 30. *)
val error_count : int -> int

(** Inject [n_errors] (default {!error_count}) single-cell errors into the
    given columns; raises [Invalid_argument] on an empty column list. *)
val inject :
  ?seed:int -> ?n_errors:int -> columns:int list -> Dataframe.Frame.t -> injection

(** Restrict to constrained attributes (§8.2 protocol). *)
val inject_constrained :
  ?seed:int -> ?n_errors:int -> Netlib.built -> Dataframe.Frame.t -> injection

(** Any non-label attribute (Table 3 protocol). *)
val inject_any :
  ?seed:int -> ?n_errors:int -> Netlib.built -> Dataframe.Frame.t -> injection
