(* Specifications of the 12 evaluation datasets (paper Table 2).

   The originals are UCI / OpenML / Kaggle / bnlearn downloads; this repo
   is sealed, so each dataset is re-created synthetically by sampling a
   ground-truth Bayesian network with the same attribute count, row count
   and qualitative character (see DESIGN.md, "Substitutions"). The knobs
   below reproduce the failure regimes §8 discusses:

     - [noise]      exogenous corruption of the constraint functions; high
                    noise + few rows (#4 Diabetes) starves the statistical
                    signal, which is where the paper reports GUARDRAIL's
                    weakest result;
     - [high_card]  number of high-cardinality attributes (e.g. #8 Jungle
                    Chess board positions): these break the identity
                    sampler (Table 8) and push FDX toward degeneracy;
     - [duplicate_attr] a perfectly collinear attribute pair (#3 Cylinder
                    Bands process parameters): makes FDX's Gram matrix
                    singular — the paper's ill-conditioned inversion;
     - wide datasets (#3, #11) blow up TANE/CTANE's candidate lattice. *)

type t = {
  id : int;
  name : string;
  category : string;
  n_attrs : int;            (* including the label *)
  n_rows : int;
  label : string;
  label_values : string list;
  noise : float;            (* exogenous noise on constraint functions *)
  label_noise : float;      (* noise on the label's generating function *)
  n_chains : int;           (* 3-node constraint chains a -> b -> c *)
  n_colliders : int;        (* 2-parent constraint functions (v-structures) *)
  high_card : int;          (* attributes with large domains *)
  duplicate_attr : bool;    (* add a zero-noise copy attribute *)
  seed : int;
}

let all =
  [
    { id = 1; name = "Adult"; category = "Demographic"; n_attrs = 15;
      n_rows = 48842; label = "income"; label_values = [ "<=50K"; ">50K" ];
      noise = 0.008; label_noise = 0.10; n_chains = 3; n_colliders = 1;
      high_card = 0; duplicate_attr = false; seed = 1101 };
    { id = 2; name = "Lung Cancer"; category = "Medical"; n_attrs = 5;
      n_rows = 20000; label = "dysp"; label_values = [ "no"; "yes" ];
      noise = 0.004; label_noise = 0.05; n_chains = 1; n_colliders = 1;
      high_card = 0; duplicate_attr = false; seed = 1202 };
    { id = 3; name = "Cylinder Bands"; category = "Manufacturing"; n_attrs = 40;
      n_rows = 540; label = "band_type"; label_values = [ "band"; "noband" ];
      noise = 0.01; label_noise = 0.12; n_chains = 5; n_colliders = 2;
      high_card = 1; duplicate_attr = true; seed = 1303 };
    { id = 4; name = "Diabetes"; category = "Medical"; n_attrs = 9;
      n_rows = 520; label = "class"; label_values = [ "neg"; "pos" ];
      noise = 0.18; label_noise = 0.18; n_chains = 1; n_colliders = 1;
      high_card = 0; duplicate_attr = false; seed = 1404 };
    { id = 5; name = "Contraceptive Method Choice"; category = "Demographic";
      n_attrs = 10; n_rows = 1473; label = "method";
      label_values = [ "none"; "short"; "long" ];
      noise = 0.10; label_noise = 0.08; n_chains = 1; n_colliders = 1;
      high_card = 1; duplicate_attr = false; seed = 1505 };
    { id = 6; name = "Blood Transfusion Service Center"; category = "Medical";
      n_attrs = 4; n_rows = 748; label = "donated";
      label_values = [ "no"; "yes" ];
      noise = 0.005; label_noise = 0.10; n_chains = 1; n_colliders = 0;
      high_card = 0; duplicate_attr = false; seed = 1606 };
    { id = 7; name = "Steel Plates Faults"; category = "Manufacturing";
      n_attrs = 28; n_rows = 1941; label = "fault";
      label_values = [ "none"; "scratch"; "bump" ];
      noise = 0.10; label_noise = 0.12; n_chains = 4; n_colliders = 1;
      high_card = 0; duplicate_attr = false; seed = 1707 };
    { id = 8; name = "Jungle Chess"; category = "Game"; n_attrs = 7;
      n_rows = 44819; label = "outcome"; label_values = [ "w"; "d"; "l" ];
      noise = 0.01; label_noise = 0.10; n_chains = 1; n_colliders = 1;
      high_card = 3; duplicate_attr = false; seed = 1808 };
    { id = 9; name = "Telco Customer Churn"; category = "Business";
      n_attrs = 21; n_rows = 7043; label = "churn";
      label_values = [ "no"; "yes" ];
      noise = 0.006; label_noise = 0.10; n_chains = 4; n_colliders = 2;
      high_card = 0; duplicate_attr = false; seed = 1909 };
    { id = 10; name = "Bank Marketing"; category = "Business"; n_attrs = 17;
      n_rows = 45211; label = "subscribed"; label_values = [ "no"; "yes" ];
      noise = 0.012; label_noise = 0.14; n_chains = 3; n_colliders = 1;
      high_card = 1; duplicate_attr = false; seed = 2010 };
    { id = 11; name = "Phishing Websites"; category = "Security"; n_attrs = 31;
      n_rows = 11055; label = "phishing"; label_values = [ "no"; "yes" ];
      noise = 0.01; label_noise = 0.08; n_chains = 5; n_colliders = 2;
      high_card = 0; duplicate_attr = false; seed = 2111 };
    { id = 12; name = "Hotel Reservations"; category = "Business"; n_attrs = 18;
      n_rows = 36275; label = "canceled"; label_values = [ "no"; "yes" ];
      noise = 0.008; label_noise = 0.12; n_chains = 3; n_colliders = 2;
      high_card = 0; duplicate_attr = false; seed = 2212 };
  ]

let by_id id =
  match List.find_opt (fun s -> s.id = id) all with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Spec.by_id: no dataset %d" id)

let pp ppf s =
  Fmt.pf ppf "#%d %s (%s): %d attrs, %d rows" s.id s.name s.category s.n_attrs
    s.n_rows
