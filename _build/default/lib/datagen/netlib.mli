(** Ground-truth Bayesian networks for the 12 evaluation datasets. *)

type built = {
  spec : Spec.t;
  net : Pgm.Bayes_net.t;
  names : string array;     (** node order; label last *)
  label_idx : int;
  constrained : int list;   (** non-label attributes with parents *)
  groups : int list list;   (** constraint groups (attribute indices) *)
}

(** Deterministic integer mixer used for constraint functions. *)
val mix : int -> int -> int list -> int

val value_names : int -> string list

val build : Spec.t -> built

val ground_truth_dag : built -> Pgm.Dag.t
