(* Materialize a dataset: forward-sample its ground-truth network into a
   dataframe of string-valued categorical columns. *)

module Frame = Dataframe.Frame
module Value = Dataframe.Value

(* Map a node's sampled value index to a printable value. Labels use the
   spec's label vocabulary (cycled if the network card exceeds it). *)
let render (b : Netlib.built) node_idx v =
  if node_idx = b.Netlib.label_idx then begin
    let vocab = Array.of_list b.Netlib.spec.Spec.label_values in
    Value.String vocab.(v mod Array.length vocab)
  end
  else Value.String (Printf.sprintf "v%d" v)

let frame_of_samples (b : Netlib.built) samples =
  let n_nodes = Pgm.Bayes_net.node_count b.Netlib.net in
  let cols =
    List.init n_nodes (fun i -> Dataframe.Schema.categorical b.Netlib.names.(i))
  in
  let schema = Dataframe.Schema.make cols in
  let rows =
    Array.to_list
      (Array.map
         (fun sample -> Array.mapi (fun i v -> render b i v) sample)
         samples)
  in
  Frame.of_rows schema rows

(* Sample [n_rows] (or the spec's row count) with the given seed. *)
let dataset ?n_rows ?(seed_offset = 0) (spec : Spec.t) =
  let b = Netlib.build spec in
  let n = Option.value ~default:spec.Spec.n_rows n_rows in
  let rng = Stat.Rng.create (spec.Spec.seed + 7 + seed_offset) in
  let samples = Pgm.Bayes_net.sample_many b.Netlib.net rng n in
  (b, frame_of_samples b samples)

(* Smaller replicas used by unit tests and quick experiments. *)
let small_dataset ?(n_rows = 2000) spec =
  dataset ~n_rows:(min n_rows spec.Spec.n_rows) spec
