(* Error injection (paper §8, Setup).

   Cells of eligible columns are replaced by a *different* random value
   from the column's observed domain. The paper injects at a fixed 1% row
   rate, "slightly higher for datasets with fewer rows, capped at 30
   errors"; [error_count] reproduces that rule. The injector returns the
   ground-truth error mask detection is scored against (Table 3). *)

module Frame = Dataframe.Frame
module Value = Dataframe.Value

type injection = {
  corrupted : Frame.t;
  mask : bool array;                  (* per-row: was an error injected? *)
  cells : (int * int) list;           (* (row, column) of each error *)
}

let error_count n_rows =
  let one_percent = n_rows / 100 in
  if one_percent >= 30 then one_percent else min 30 (max 1 (n_rows / 10))

(* Replace the cell with a different value drawn from the column's
   dictionary (requires at least two distinct values). *)
let corrupt_cell rng frame row col =
  let column = Frame.column frame col in
  let card = Dataframe.Column.cardinality column in
  if card < 2 then None
  else begin
    let current = Dataframe.Column.code column row in
    let pick = Stat.Rng.int rng (card - 1) in
    let code = if pick >= current then pick + 1 else pick in
    Some (Dataframe.Column.value_of_code column code)
  end

let inject ?(seed = 42) ?n_errors ~columns frame =
  let n = Frame.nrows frame in
  let columns = Array.of_list columns in
  if Array.length columns = 0 then invalid_arg "Corrupt.inject: no columns";
  let rng = Stat.Rng.create seed in
  let k = min n (Option.value ~default:(error_count n) n_errors) in
  let rows = Array.init n (fun i -> i) in
  Stat.Rng.shuffle_in_place rng rows;
  let mask = Array.make n false in
  let cells = ref [] in
  let frame_ref = ref frame in
  let placed = ref 0 in
  let idx = ref 0 in
  while !placed < k && !idx < n do
    let row = rows.(!idx) in
    incr idx;
    let col = columns.(Stat.Rng.int rng (Array.length columns)) in
    match corrupt_cell rng !frame_ref row col with
    | Some v ->
      frame_ref := Frame.set !frame_ref row col v;
      mask.(row) <- true;
      cells := (row, col) :: !cells;
      incr placed
    | None -> ()
  done;
  { corrupted = !frame_ref; mask; cells = List.rev !cells }

(* Inject only into constrained attributes — the §8.2 protocol that
   isolates detectable errors. *)
let inject_constrained ?seed ?n_errors (b : Netlib.built) frame =
  let columns =
    List.map (fun i -> Frame.index frame b.Netlib.names.(i)) b.Netlib.constrained
  in
  inject ?seed ?n_errors ~columns frame

(* Inject into any non-label attribute (Table 3 protocol). *)
let inject_any ?seed ?n_errors (b : Netlib.built) frame =
  let columns =
    List.filter
      (fun c -> c <> Frame.index frame b.Netlib.spec.Spec.label)
      (List.init (Frame.ncols frame) (fun i -> i))
  in
  inject ?seed ?n_errors ~columns frame
