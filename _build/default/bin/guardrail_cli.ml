(* Command-line interface to the GUARDRAIL library.

     guardrail synthesize data.csv -o constraints.grl
     guardrail detect    data.csv -c constraints.grl
     guardrail rectify   data.csv -c constraints.grl -o repaired.csv
     guardrail sql       data.csv -c constraints.grl --table t
     guardrail datasets
*)

module Frame = Dataframe.Frame

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let load_constraints frame path =
  Guardrail.Parse.prog (Frame.schema frame) (read_file path)

(* ------------------------------------------------------------------ *)
(* synthesize *)

let synthesize csv_path output epsilon alpha identity_sampler quiet =
  let frame = Dataframe.Csv.load csv_path in
  let config =
    { Guardrail.Config.default with
      Guardrail.Config.epsilon;
      alpha;
      sampler =
        (if identity_sampler then Guardrail.Config.Identity
         else Guardrail.Config.Auxiliary);
    }
  in
  let result = Guardrail.Synthesize.run ~config frame in
  let text = Guardrail.Pretty.prog_to_string result.Guardrail.Synthesize.program in
  (match output with
   | Some path -> write_file path (text ^ "\n")
   | None -> print_endline text);
  if not quiet then
    Printf.eprintf
      "synthesized %d statements (coverage %.3f, %d DAGs in MEC%s, %.2fs)\n"
      (Guardrail.Dsl.stmt_count result.Guardrail.Synthesize.program)
      result.Guardrail.Synthesize.coverage
      result.Guardrail.Synthesize.dag_count
      (if result.Guardrail.Synthesize.truncated then ", truncated" else "")
      (Guardrail.Synthesize.total_time result.Guardrail.Synthesize.timing);
  0

(* ------------------------------------------------------------------ *)
(* detect *)

let detect csv_path constraints_path =
  let frame = Dataframe.Csv.load csv_path in
  let program = load_constraints frame constraints_path in
  let violations = Guardrail.Validator.violations program frame in
  List.iter
    (fun v ->
      print_endline (Guardrail.Validator.describe (Frame.schema frame) v))
    violations;
  Printf.eprintf "%d violation(s) in %d rows\n" (List.length violations)
    (Frame.nrows frame);
  if violations = [] then 0 else 1

(* ------------------------------------------------------------------ *)
(* rectify *)

let rectify csv_path constraints_path output strategy_name =
  let frame = Dataframe.Csv.load csv_path in
  let program = load_constraints frame constraints_path in
  match Guardrail.Validator.strategy_of_string strategy_name with
  | None ->
    Printf.eprintf "unknown strategy %S (raise|ignore|coerce|rectify)\n"
      strategy_name;
    2
  | Some strategy ->
    let repaired, violations =
      Guardrail.Validator.handle ~strategy program frame
    in
    let text = Dataframe.Csv.to_string repaired in
    (match output with
     | Some path -> write_file path text
     | None -> print_string text);
    Printf.eprintf "%d violation(s) handled with %s\n" (List.length violations)
      strategy_name;
    0

(* ------------------------------------------------------------------ *)
(* inspect *)

let inspect csv_path constraints_path epsilon =
  let frame = Dataframe.Csv.load csv_path in
  let program = load_constraints frame constraints_path in
  let report = Guardrail.Report.of_program ~epsilon program frame in
  Fmt.pr "%a@." Guardrail.Report.pp report;
  if
    List.for_all
      (fun r -> r.Guardrail.Report.epsilon_valid)
      report.Guardrail.Report.statements
  then 0
  else 1

(* ------------------------------------------------------------------ *)
(* sql *)

let sql csv_path constraints_path table =
  let frame = Dataframe.Csv.load csv_path in
  let program = load_constraints frame constraints_path in
  print_endline "-- violation queries";
  List.iter print_endline
    (Guardrail.Sql_export.prog_violation_queries ~table program);
  print_endline "-- rectification updates";
  List.iter print_endline
    (Guardrail.Sql_export.prog_rectify_updates ~table program);
  0

(* ------------------------------------------------------------------ *)
(* datasets *)

let datasets () =
  List.iter (fun spec -> Fmt.pr "%a@." Datagen.Spec.pp spec) Datagen.Spec.all;
  0

(* generate one of the evaluation datasets to CSV *)
let generate id n_rows output =
  let spec = Datagen.Spec.by_id id in
  let _, frame =
    match n_rows with
    | Some n -> Datagen.Generate.dataset ~n_rows:n spec
    | None -> Datagen.Generate.dataset spec
  in
  let text = Dataframe.Csv.to_string frame in
  (match output with
   | Some path -> write_file path text
   | None -> print_string text);
  Printf.eprintf "generated %s: %d rows\n" spec.Datagen.Spec.name
    (Frame.nrows frame);
  0

(* ------------------------------------------------------------------ *)
(* command definitions *)

open Cmdliner

let csv_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv" ~doc:"Input CSV file.")

let constraints_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "c"; "constraints" ] ~docv:"FILE" ~doc:"Constraint program file.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout if omitted).")

let synthesize_cmd =
  let epsilon =
    Arg.(
      value & opt float 0.05
      & info [ "epsilon" ] ~docv:"EPS"
          ~doc:"Noise tolerance for branch validity (paper recommends 0.01-0.05).")
  in
  let alpha =
    Arg.(
      value & opt float 0.01
      & info [ "alpha" ] ~docv:"ALPHA" ~doc:"CI-test significance level.")
  in
  let identity =
    Arg.(
      value & flag
      & info [ "identity-sampler" ]
          ~doc:"Learn on raw codes instead of the auxiliary distribution (ablation).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the summary.") in
  Cmd.v
    (Cmd.info "synthesize" ~doc:"Synthesize integrity constraints from a CSV dataset.")
    Term.(const synthesize $ csv_arg $ output_arg $ epsilon $ alpha $ identity $ quiet)

let detect_cmd =
  Cmd.v
    (Cmd.info "detect" ~doc:"Report rows violating a constraint program.")
    Term.(const detect $ csv_arg $ constraints_arg)

let rectify_cmd =
  let strategy =
    Arg.(
      value & opt string "rectify"
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:"Error handling: raise, ignore, coerce or rectify.")
  in
  Cmd.v
    (Cmd.info "rectify" ~doc:"Apply an error-handling strategy and emit the repaired CSV.")
    Term.(const rectify $ csv_arg $ constraints_arg $ output_arg $ strategy)

let inspect_cmd =
  let epsilon =
    Arg.(
      value & opt float 0.05
      & info [ "epsilon" ] ~docv:"EPS" ~doc:"Validity threshold for the report.")
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Report per-statement coverage, loss and validity of a constraint \
             program against a dataset.")
    Term.(const inspect $ csv_arg $ constraints_arg $ epsilon)

let sql_cmd =
  let table =
    Arg.(
      value & opt string "data"
      & info [ "table" ] ~docv:"NAME" ~doc:"Table name used in the generated SQL.")
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Export the constraints as SQL queries and updates.")
    Term.(const sql $ csv_arg $ constraints_arg $ table)

let datasets_cmd =
  Cmd.v
    (Cmd.info "datasets" ~doc:"List the 12 built-in evaluation datasets.")
    Term.(const datasets $ const ())

let generate_cmd =
  let id =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"ID" ~doc:"Dataset id (1-12).")
  in
  let n_rows =
    Arg.(
      value & opt (some int) None
      & info [ "rows" ] ~docv:"N" ~doc:"Row count override.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate one of the evaluation datasets as CSV.")
    Term.(const generate $ id $ n_rows $ output_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "guardrail" ~version:"1.0.0"
       ~doc:"Automated integrity constraint synthesis from noisy data.")
    [ synthesize_cmd; detect_cmd; rectify_cmd; inspect_cmd; sql_cmd;
      datasets_cmd; generate_cmd ]

let () = exit (Cmd.eval' main_cmd)
