examples/hospital.mli:
