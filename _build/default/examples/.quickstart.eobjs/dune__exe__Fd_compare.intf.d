examples/fd_compare.mli:
