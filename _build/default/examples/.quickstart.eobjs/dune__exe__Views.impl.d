examples/views.ml: Dataframe Datagen Fmt Guardrail Mlmodel Printf Sqlexec
