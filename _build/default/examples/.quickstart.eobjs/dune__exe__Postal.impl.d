examples/postal.ml: Array Dataframe Fmt Guardrail List Printf Stat
