examples/hospital.ml: Dataframe Datagen Fmt Guardrail List Mlmodel Printf Sqlexec Stat
