examples/quickstart.mli:
