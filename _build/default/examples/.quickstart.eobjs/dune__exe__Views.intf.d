examples/views.mli:
