examples/postal.mli:
