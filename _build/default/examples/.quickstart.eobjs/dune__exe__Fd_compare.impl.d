examples/fd_compare.ml: Baselines Dataframe Datagen Fmt Guardrail List Printf Stat
