examples/quickstart.ml: Dataframe Guardrail List Printf String
